"""Millisecond-granularity fluid model of an incast bottleneck.

The Section 3 fleet model needs to turn thousands of synthetic bursts into
Millisampler-style interval records. Packet-level simulation at that volume
is wasteful, so this module provides a fluid-flow counterpart built on the
same physics the packet model (and the paper's Section 4 analysis) exhibits:

- window-limited queueing: the backlog of an aggregate window W at the
  bottleneck equilibrates at ``W - BDP`` (the paper's degenerate-point
  arithmetic), and senders are ACK-clocked, so the queue can never exceed
  that;
- all-or-nothing ECN marking: intervals during which the queue exceeds the
  marking threshold mark essentially *all* arrivals (Figure 1c);
- overflow: backlog beyond the *effective* capacity (which rack-level
  buffer contention can reduce below the configured limit) is dropped and
  retransmitted in following intervals;
- DCTCP aggregate dynamics: the aggregate window of K flows grows additively
  per round when unmarked, is cut proportionally to alpha when marked, and
  is floored at ``K * MSS`` — the degenerate point.

The recursion runs at 1 ms steps; the number of congestion-control rounds
per step follows from the backlog-inflated RTT, as in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units

_EPSILON_BYTES = 1.0


@dataclass
class FluidConfig:
    """Environment of the fluid bottleneck (production-like defaults:
    25 Gbps NICs, 30 us base RTT, 2 MB ToR queue, ECN at 6.7% of capacity —
    the paper's production ECN threshold)."""

    line_rate_bps: float = units.gbps(25.0)
    base_rtt_ns: int = units.usec(30.0)
    capacity_bytes: int = 2_000_000
    ecn_threshold_frac: float = 0.067
    mss_bytes: int = 1500
    interval_ns: int = units.msec(1.0)
    dctcp_g: float = 1.0 / 16.0
    aggregate_growth_mss_per_round: float = 1.0
    max_window_bytes: float = 8_000_000.0
    growth_overshoot_factor: float = 2.0

    @property
    def drain_bytes_per_interval(self) -> float:
        """Bytes the downlink drains per interval."""
        return self.line_rate_bps * self.interval_ns / (
            units.BITS_PER_BYTE * units.NS_PER_S)

    @property
    def bdp_bytes(self) -> float:
        """Bandwidth-delay product of the bottleneck path."""
        return self.line_rate_bps * self.base_rtt_ns / (
            units.BITS_PER_BYTE * units.NS_PER_S)

    @property
    def ecn_threshold_bytes(self) -> float:
        """ECN marking threshold in bytes."""
        return self.ecn_threshold_frac * self.capacity_bytes


@dataclass
class FluidBurstTrace:
    """Per-interval outputs of one fluid burst."""

    delivered_bytes: np.ndarray
    marked_bytes: np.ndarray
    retransmit_bytes: np.ndarray
    dropped_bytes: np.ndarray
    queue_frac: np.ndarray

    @property
    def n_intervals(self) -> int:
        """How many intervals the burst spanned (including loss recovery)."""
        return len(self.delivered_bytes)

    @property
    def total_delivered(self) -> int:
        """Total bytes delivered to the receiver."""
        return int(self.delivered_bytes.sum())

    @property
    def peak_queue_frac(self) -> float:
        """Peak queue occupancy as a fraction of configured capacity."""
        return float(self.queue_frac.max()) if len(self.queue_frac) else 0.0


class FluidIncast:
    """Runs one incast burst through the fluid bottleneck.

    Args:
        config: The fluid environment.
        flow_count: K, the incast degree.
        demand_bytes: Aggregate bytes the K workers must deliver.
        effective_capacity_bytes: Queue capacity actually available (shared
            buffering may make this less than the configured capacity).
        window_start_factor: Initial aggregate window, in multiples of the
            degenerate floor ``K * MSS``. Values above 1 model CWND state
            carried over from previous bursts (straggler ramp-up,
            Section 4.3).
        initial_alpha: Starting DCTCP alpha estimate of the aggregate.
        arrival_rate_factor: Peak aggregate arrival rate as a multiple of
            the line rate. Values <= 1 model loosely synchronized worker
            responses that saturate the link without queueing (the ~50% of
            production bursts that never mark, Figure 4b); values > 1 model
            tightly synchronized responses that build queues.
    """

    def __init__(self, config: FluidConfig, flow_count: int,
                 demand_bytes: int, effective_capacity_bytes: float,
                 window_start_factor: float = 1.0,
                 initial_alpha: float = 0.5,
                 arrival_rate_factor: float = float("inf")):
        if arrival_rate_factor <= 0:
            raise ValueError("arrival_rate_factor must be positive")
        if flow_count <= 0:
            raise ValueError("flow_count must be positive")
        if demand_bytes <= 0:
            raise ValueError("demand_bytes must be positive")
        if effective_capacity_bytes <= 0:
            raise ValueError("effective capacity must be positive")
        self.config = config
        self.flow_count = flow_count
        self.demand_bytes = demand_bytes
        self.effective_capacity_bytes = min(effective_capacity_bytes,
                                            float(config.capacity_bytes))
        self.window_floor_bytes = float(flow_count * config.mss_bytes)
        self.window_bytes = min(
            max(window_start_factor, 0.05) * self.window_floor_bytes,
            config.max_window_bytes)
        self.alpha = min(max(initial_alpha, 0.0), 1.0)
        self.arrival_rate_factor = arrival_rate_factor

    def run(self, max_intervals: int = 2000) -> FluidBurstTrace:
        """Run the burst to completion (or ``max_intervals``)."""
        cfg = self.config
        drain = cfg.drain_bytes_per_interval
        bdp = cfg.bdp_bytes
        thresh = cfg.ecn_threshold_bytes
        eff_cap = self.effective_capacity_bytes

        delivered_l: list[float] = []
        marked_l: list[float] = []
        retx_l: list[float] = []
        dropped_l: list[float] = []
        queue_l: list[float] = []

        remaining = float(self.demand_bytes)
        retx_pool = 0.0
        queue = 0.0
        retx_frac_of_queue = 0.0

        for _ in range(max_intervals):
            if remaining + retx_pool + queue <= _EPSILON_BYTES:
                break
            w = self.window_bytes
            rtt_eff_ns = cfg.base_rtt_ns + queue * units.BITS_PER_BYTE \
                * units.NS_PER_S / cfg.line_rate_bps
            rounds_capacity = cfg.interval_ns / rtt_eff_ns
            # ACK clocking: senders can refill drained capacity and grow the
            # backlog at most up to W - BDP; they also cannot emit more than
            # one window per round.
            backlog_room = max(0.0, (w - bdp) - queue)
            send_limit = min(backlog_room + drain, w * rounds_capacity,
                             self.arrival_rate_factor * drain)
            send = min(remaining + retx_pool, max(send_limit, 0.0))
            retx_sent = min(retx_pool, send)
            fresh_sent = send - retx_sent
            retx_pool -= retx_sent
            remaining -= fresh_sent

            q_start = queue
            total = queue + send
            kept = min(total, eff_cap + drain)
            dropped = total - kept
            delivered = min(kept, drain)
            queue = kept - delivered
            peak = min(eff_cap, max(q_start, queue))

            # Track what share of the standing data is retransmitted bytes,
            # so deliveries can be attributed (this is what the host-side
            # sampler reports as retransmit traffic).
            retx_in = retx_frac_of_queue * q_start + retx_sent
            retx_frac_total = retx_in / total if total > 0 else 0.0
            retx_delivered = delivered * retx_frac_total
            retx_frac_of_queue = retx_frac_total
            # Drops return to the retransmission pool.
            retx_pool += dropped

            # ECN marking: all arrivals while the queue sits above the
            # threshold are marked; when the queue crosses the threshold
            # within the interval, the marked share is the fraction of the
            # excursion above it.
            lo, hi = min(q_start, queue), max(q_start, queue)
            if hi <= thresh:
                marked = 0.0
            elif lo >= thresh:
                marked = send
            else:
                marked = send * (hi - thresh) / max(hi - lo, 1.0)

            # Aggregate DCTCP reaction over the rounds actually clocked.
            busy_rounds = send / w if w > 0 else 0.0
            if marked > 0.0 and busy_rounds > 0.0:
                self.alpha = 1.0 - (1.0 - self.alpha) \
                    * (1.0 - cfg.dctcp_g) ** busy_rounds
                self.window_bytes = max(
                    self.window_floor_bytes,
                    w * (1.0 - self.alpha / 2.0) ** busy_rounds)
            elif busy_rounds > 0.0:
                self.alpha *= (1.0 - cfg.dctcp_g) ** busy_rounds
                growth = (cfg.aggregate_growth_mss_per_round * cfg.mss_bytes
                          * self.flow_count * busy_rounds)
                # At 1 ms granularity, unchecked growth would overshoot the
                # marking point by tens of rounds before the model reacts;
                # real DCTCP is cut within ~1 RTT of crossing the threshold,
                # so growth-driven windows are clamped to a bounded
                # overshoot above it. (Carried-over windows may still start
                # arbitrarily higher.)
                growth_cap = max(w, cfg.growth_overshoot_factor
                                 * (thresh + bdp))
                self.window_bytes = min(w + growth, growth_cap,
                                        cfg.max_window_bytes)

            delivered_l.append(delivered)
            marked_l.append(marked)
            retx_l.append(retx_delivered)
            dropped_l.append(dropped)
            # Occupancy is reported against the *configured* capacity (the
            # units of Figure 4a); contention lowers the achievable maximum.
            queue_l.append(peak / cfg.capacity_bytes)

        return FluidBurstTrace(
            delivered_bytes=np.asarray(delivered_l),
            marked_bytes=np.asarray(marked_l),
            retransmit_bytes=np.asarray(retx_l),
            dropped_bytes=np.asarray(dropped_l),
            queue_frac=np.asarray(queue_l),
        )


def degenerate_point_flows(config: FluidConfig) -> int:
    """The flow count K* beyond which the fluid queue cannot drain below
    the ECN threshold even at minimum windows (the paper's Section 4.1.2
    degenerate point, in the production environment)."""
    budget = config.ecn_threshold_bytes + config.bdp_bytes
    return int(np.ceil(budget / config.mss_bytes))
