"""Output-queued switch.

A :class:`Switch` owns one :class:`EgressPort` per attached link. Forwarding
is by a static destination-address table (sufficient for the dumbbell and any
tree topology the experiments use). An arriving packet is looked up and
offered to the egress port's queue; the port drains the queue onto its link
one packet at a time.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator


class EgressPort:
    """An egress queue bound to an outgoing link.

    The port pumps the queue whenever the link transmitter is idle; the link
    calls back at end-of-serialization so the next packet starts immediately,
    keeping the output link work-conserving.
    """

    def __init__(self, sim: Simulator, link: Link, queue: DropTailQueue,
                 name: str = "port"):
        self._sim = sim
        self.link = link
        self.queue = queue
        self.name = name

    def enqueue(self, packet: Packet) -> bool:
        """Offer ``packet`` to the port. Returns ``False`` on tail drop."""
        accepted = self.queue.offer(packet)
        if accepted:
            self._pump()
        return accepted

    def _pump(self) -> None:
        if self.link.busy:
            return
        packet = self.queue.pop()
        if packet is not None:
            self.link.transmit(packet, on_done=self._pump)

    def __repr__(self) -> str:
        return f"EgressPort({self.name}, qlen={self.queue.len_packets})"


class Switch:
    """Output-queued switch with static destination-based forwarding.

    Attributes:
        name: Label for traces and error messages.
    """

    def __init__(self, sim: Simulator, name: str = "switch"):
        self._sim = sim
        self.name = name
        self._ports: list[EgressPort] = []
        self._routes: dict[int, EgressPort] = {}
        self._default_port: Optional[EgressPort] = None
        self.forwarded_packets = 0

    @property
    def ports(self) -> list[EgressPort]:
        """All egress ports, in attachment order."""
        return list(self._ports)

    def attach_port(self, link: Link, queue: DropTailQueue,
                    name: str = "") -> EgressPort:
        """Create an egress port that drains ``queue`` onto ``link``."""
        port = EgressPort(self._sim, link, queue,
                          name or f"{self.name}.p{len(self._ports)}")
        self._ports.append(port)
        return port

    def add_route(self, dst: int, port: EgressPort) -> None:
        """Forward packets destined to host address ``dst`` via ``port``."""
        if port not in self._ports:
            raise ValueError(f"{self.name}: route to unattached port")
        self._routes[dst] = port

    def set_default_route(self, port: EgressPort) -> None:
        """Port used for any destination without an explicit route."""
        if port not in self._ports:
            raise ValueError(f"{self.name}: default route to unattached port")
        self._default_port = port

    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet to its egress port (PacketSink API)."""
        port = self._routes.get(packet.dst, self._default_port)
        if port is None:
            raise RuntimeError(
                f"{self.name}: no route for destination {packet.dst}")
        self.forwarded_packets += 1
        port.enqueue(packet)

    def __repr__(self) -> str:
        return f"Switch({self.name}, ports={len(self._ports)})"
