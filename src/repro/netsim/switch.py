"""Output-queued switch.

A :class:`Switch` owns one :class:`EgressPort` per attached link. Forwarding
is by a static destination-address table (sufficient for the dumbbell and any
tree topology the experiments use). An arriving packet is looked up and
offered to the egress port's queue; the port drains the queue onto its link
one packet at a time.

Ports have three drain implementations, chosen per port at first traffic:

- the **legacy per-packet pump**: pop one packet, ``Link.transmit`` it, and
  be called back at end-of-serialization — two kernel events per packet;
- the **batched closed-form path**: a FIFO queue in front of a
  work-conserving link has a schedule that is fully determined at enqueue
  time (``start = max(now, busy_until)``, ``end = start + tx``,
  ``delivery = end + prop``), so the port schedules *only* the delivery
  event and records the drain times, settling queue bookkeeping for every
  drain that virtual time has passed in one tight loop the next time
  anything observes the queue — one kernel event per packet;
- the **composed path**: when the topology builder promises (via
  :meth:`EgressPort.compose_route`) that a downstream port's queue is fed
  *only* by this port, the downstream drain schedule is itself closed-form
  at this port's enqueue time, so the packet's entire switch-fabric
  traversal collapses into a single delivery event at the far endpoint;
  the downstream queue's arrivals, marks, drops, and drains are recorded
  and settled lazily, in exact virtual-time order.

Batched drains and composed arrivals are credited through
:meth:`repro.simcore.kernel.Simulator.count_batched` so event accounting
matches the legacy path one-for-one.

The batched/composed paths engage only when behaviour is provably
identical to the legacy pump: a plain :class:`~repro.netsim.link.Link`
with a positive propagation delay (so delivery is a separate event, as in
the legacy path), no shared :class:`~repro.netsim.buffers.BufferPool`
(admission timing couples queues), and no queue watchers (observers need
per-dequeue callbacks at exact drain times). Anything else falls back to
the legacy pump. The settle discipline applies strictly-older bookkeeping
only (strict ``<`` against virtual now), which reproduces the legacy
observation order: a drain completing at time T was always the
last-scheduled event among same-T events — its completion was scheduled
one serialization time before T, later than any arrival or probe event,
which travel a propagation delay or more.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from heapq import heappush

from repro.netsim.link import Link
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.simcore import kernel as _kernel
from repro.simcore.kernel import Simulator

BATCHED_EGRESS_ENABLED = True
"""Global switch for the batched/composed egress paths (tests may disable
to force every port onto the legacy per-packet pump)."""


class EgressPort:
    """An egress queue bound to an outgoing link.

    The port pumps the queue whenever the link transmitter is idle; the link
    calls back at end-of-serialization so the next packet starts immediately,
    keeping the output link work-conserving. Eligible ports (see module
    docstring) instead compute the whole drain schedule at enqueue time and
    batch the bookkeeping.
    """

    def __init__(self, sim: Simulator, link: Link, queue: DropTailQueue,
                 name: str = "port"):
        self._sim = sim
        self.link = link
        self.queue = queue
        self.name = name
        self._batched: Optional[bool] = None  # decided on first enqueue
        self._drains: deque[int] = deque()    # drain-start times, FIFO order
        self._busy_until = -1                 # when the transmitter frees up
        self._sink = None
        # Composition (this port as the upstream feeder):
        self._compose_routes: dict[int, "EgressPort"] = {}
        self._switch: Optional["Switch"] = None  # set by attach_port
        # Composition (this port as the composed downstream):
        self._composed: Optional[bool] = None
        # Propagation delay shared by every chain-handoff feeder (see
        # HostNIC.compose_chain_into): equal delays are what make
        # chain-firing order equal arrival order across feeders.
        self._vfeeder_prop: Optional[int] = None
        # Admission constants, cached by _engage_composed:
        self._vcap_pk: Optional[int] = None
        self._vcap_by: Optional[int] = None
        self._vthresh: Optional[int] = None
        self._vbusy_until = -1
        self._vlen_pk = 0
        self._vlen_by = 0
        self._vfuture: deque[tuple[int, int]] = deque()  # (start, size)
        self._varrivals: deque[tuple] = deque()  # (arr, start, pkt, mark, drop)
        self._vdrains: deque[tuple[int, int]] = deque()  # (start, size)

    def compose_route(self, dst: int, downstream: "EgressPort") -> None:
        """Declare that every packet this port delivers toward host ``dst``
        is the *only* traffic entering ``downstream``'s queue.

        This is a topology-builder promise (e.g. the dumbbell's trunk port
        is the sole feeder of the receiver-downlink queue). It licenses the
        composed path; if traffic ever reaches the downstream port from
        anywhere else while composed, the downstream port raises rather
        than silently diverge.
        """
        self._compose_routes[dst] = downstream

    def enqueue(self, packet: Packet) -> bool:
        """Offer ``packet`` to the port. Returns ``False`` on tail drop."""
        if self._composed:
            raise RuntimeError(
                f"{self.name}: real enqueue on a composed port — the "
                f"topology builder's sole-feeder promise was violated")
        batched = self._batched
        if batched is None:
            batched = self._decide_mode()
        if batched:
            return self._enqueue_batched(packet)
        accepted = self.queue.offer(packet)
        if accepted:
            self._pump()
        return accepted

    def _decide_mode(self) -> bool:
        """Pick the drain implementation once, at first traffic."""
        link = self.link
        queue = self.queue
        batched = (BATCHED_EGRESS_ENABLED
                   and type(link) is Link and link.prop_delay_ns > 0
                   and link.sink is not None
                   and queue.pool is None and not queue._watchers)
        self._batched = batched
        if batched:
            self._sink = link.sink
            queue._settle = self._settle
            # Skip the mode dispatch on every later call (a batched port
            # can never become composed: engagement requires an undecided
            # mode, so this shadow is permanent and safe).
            self.enqueue = self._enqueue_batched
        return batched

    def _enqueue_batched(self, packet: Packet) -> bool:
        # This inlines DropTailQueue.offer for the eligible case (no pool,
        # no watchers — guaranteed by _decide_mode), settling first so
        # capacity and ECN marking see exactly the depth the legacy drain
        # events would have left.
        sim = self._sim
        now = sim._now
        drains = self._drains
        if drains and drains[0] < now:
            self._settle()
        queue = self.queue
        fifo = queue._fifo
        stats = queue._stats
        size = packet.size_bytes
        depth = len(fifo)
        cap = queue.capacity_packets
        cap_bytes = queue.capacity_bytes
        depth_bytes = queue._len_bytes + size
        if ((cap is not None and depth >= cap)
                or (cap_bytes is not None and depth_bytes > cap_bytes)):
            stats.dropped_packets += 1
            stats.dropped_bytes += size
            return False
        threshold = queue.ecn_threshold_packets
        if threshold is not None and depth >= threshold and packet.ecn != 0:
            packet.ecn = 2  # ECN.CE
            stats.marked_packets += 1
            stats.marked_bytes += size
        fifo.append(packet)
        queue._len_bytes = depth_bytes
        stats.enqueued_packets += 1
        stats.enqueued_bytes += size
        if depth + 1 > stats.max_len_packets:
            stats.max_len_packets = depth + 1
        if depth_bytes > stats.max_len_bytes:
            stats.max_len_bytes = depth_bytes
        link = self.link
        tx = link._tx_time_cache.get(size)
        if tx is None:
            tx = link.tx_time_ns(packet)
        busy_until = self._busy_until
        if drains or busy_until >= now:
            # Transmitter busy (>= matches the legacy pump: the completion
            # event for a transmission ending exactly now always carries a
            # later sequence number than the arrival that got us here, so
            # the legacy port would still have seen busy=True). The drain
            # is credited now (its legacy completion event is foregone);
            # its bookkeeping settles lazily on observation.
            drains.append(busy_until)
            end = busy_until + tx
            sim.count_batched(1)
        else:
            # Idle transmitter: the legacy pump pops and starts transmitting
            # within the enqueue event itself; mirror that inline.
            fifo.popleft()
            queue._len_bytes = depth_bytes - size
            stats.dequeued_packets += 1
            stats.dequeued_bytes += size
            link.bytes_sent += size
            link.packets_sent += 1
            end = now + tx
            sim.count_batched(1)
        self._busy_until = end
        arrival = end + link.prop_delay_ns
        downstream = self._compose_routes.get(packet.dst)
        if downstream is not None and downstream._engage_composed():
            downstream._virtual_enqueue(packet, arrival)
        else:
            sim._queue.push_fire(arrival, self._sink.receive, (packet,))
        return True

    def _settle(self) -> None:
        """Apply every pending drain that virtual time has strictly passed
        (see the module docstring for why strict ``<`` is exact)."""
        drains = self._drains
        if not drains:
            return
        now = self._sim._now
        if drains[0] >= now:
            return
        queue = self.queue
        fifo = queue._fifo
        stats = queue._stats
        link = self.link
        len_bytes = queue._len_bytes
        while drains and drains[0] < now:
            drains.popleft()
            size = fifo.popleft().size_bytes
            len_bytes -= size
            stats.dequeued_packets += 1
            stats.dequeued_bytes += size
            link.bytes_sent += size
            link.packets_sent += 1
        queue._len_bytes = len_bytes

    # --- composed downstream -------------------------------------------

    def _engage_composed(self) -> bool:
        """Check (once) that this port can run as a composed downstream."""
        composed = self._composed
        if composed is None:
            link = self.link
            queue = self.queue
            composed = (BATCHED_EGRESS_ENABLED
                        and type(link) is Link and link.prop_delay_ns > 0
                        and link.sink is not None
                        and queue.pool is None and not queue._watchers
                        and self._batched is None and not queue._fifo)
            self._composed = composed
            if composed:
                self._batched = False  # real-enqueue path must not engage
                self._sink = link.sink
                queue._settle = self._settle_composed
                # Admission parameters are construction-time constants
                # (nothing in the repository mutates them mid-run); cache
                # them so the per-packet path skips the queue derefs.
                self._vcap_pk = queue.capacity_packets
                self._vcap_by = queue.capacity_bytes
                self._vthresh = queue.ecn_threshold_packets
        return composed

    def _virtual_enqueue(self, packet: Packet, arrival: int) -> None:
        """Admit ``packet`` into this port's *future* queue state at time
        ``arrival``, scheduling only the final delivery event.

        The caller guarantees non-decreasing ``arrival`` order — either a
        single upstream FIFO feeder (sole-feeder composition), or several
        chain-handoff feeders whose access links share one propagation
        delay (chain events fire in heap order; adding a common constant
        preserves both the order and the FIFO tie-breaks). The future
        occupancy at each arrival instant is then exact: packets whose
        drain starts strictly before the arrival have left (legacy
        drain-completion events at the arrival instant fired *after* the
        arrival event).
        """
        future = self._vfuture
        vlen_pk = self._vlen_pk
        vlen_by = self._vlen_by
        while future and future[0][0] < arrival:
            vlen_by -= future.popleft()[1]
            vlen_pk -= 1
        size = packet.size_bytes
        sim = self._sim
        cap_pk = self._vcap_pk
        cap_by = self._vcap_by
        if ((cap_pk is not None and vlen_pk >= cap_pk)
                or (cap_by is not None and vlen_by + size > cap_by)):
            self._vlen_pk = vlen_pk
            self._vlen_by = vlen_by
            self._varrivals.append((arrival, -1, packet, False, True))
            # Credit the foregone arrival event; no drain.
            sim._events_processed += 1
            _kernel._total_events_processed += 1
            return
        threshold = self._vthresh
        marked = (threshold is not None and vlen_pk >= threshold
                  and packet.ecn != 0)
        if marked:
            packet.ecn = 2  # ECN.CE
        vbusy = self._vbusy_until
        start = vbusy if vbusy >= arrival else arrival
        link = self.link
        tx = link._tx_time_cache.get(size)
        if tx is None:
            tx = link.tx_time_ns(packet)
        end = start + tx
        self._vbusy_until = end
        future.append((start, size))
        self._vlen_pk = vlen_pk + 1
        self._vlen_by = vlen_by + size
        self._varrivals.append((arrival, start, packet, marked, False))
        # Credit the two foregone legacy events (arrival delivery + drain
        # completion) now; their bookkeeping settles lazily on observation.
        sim._events_processed += 2
        _kernel._total_events_processed += 2
        # Compose recursively when the next hop's queue is also solely fed
        # by this port: the whole multi-hop traversal then costs a single
        # delivery event at the final endpoint.
        downstream = self._compose_routes.get(packet.dst)
        if downstream is not None and downstream._engage_composed():
            downstream._virtual_enqueue(packet, end + link.prop_delay_ns)
            return
        # Inline EventQueue.push_fire (delivery time is always positive).
        eq = sim._queue
        seq = eq._next_seq
        free = eq._free
        if free:
            entry = free.pop()
            entry[0] = end + link.prop_delay_ns
            entry[1] = seq
            entry[2] = self._sink.receive
            entry[3] = (packet,)
        else:
            entry = [end + link.prop_delay_ns, seq,
                     self._sink.receive, (packet,)]
        eq._next_seq = seq + 1
        heappush(eq._heap, entry)
        eq._live += 1

    def _settle_composed(self) -> None:
        """Replay this composed queue's arrivals and drains that virtual
        time has strictly passed, in exact order (arrival before drain on
        ties — the legacy arrival event carried the smaller sequence
        number), so every observation of queue depth or stats matches the
        legacy event interleaving.
        """
        arrivals = self._varrivals
        drains = self._vdrains
        now = self._sim._now
        arr = arrivals[0] if arrivals else None
        dr = drains[0] if drains else None
        if ((arr is None or arr[0] >= now)
                and (dr is None or dr[0] >= now)):
            return
        queue = self.queue
        fifo = queue._fifo
        stats = queue._stats
        link = self.link
        switch = self._switch
        while True:
            if (arr is not None and arr[0] < now
                    and (dr is None or arr[0] <= dr[0])):
                arrivals.popleft()
                arrival, start, packet, marked, dropped = arr
                size = packet.size_bytes
                if switch is not None:
                    switch.forwarded_packets += 1
                if dropped:
                    stats.dropped_packets += 1
                    stats.dropped_bytes += size
                else:
                    if marked:
                        stats.marked_packets += 1
                        stats.marked_bytes += size
                    fifo.append(packet)
                    depth_bytes = queue._len_bytes + size
                    queue._len_bytes = depth_bytes
                    stats.enqueued_packets += 1
                    stats.enqueued_bytes += size
                    if len(fifo) > stats.max_len_packets:
                        stats.max_len_packets = len(fifo)
                    if depth_bytes > stats.max_len_bytes:
                        stats.max_len_bytes = depth_bytes
                    drains.append((start, size))
                    if dr is None:
                        dr = drains[0]
                arr = arrivals[0] if arrivals else None
            elif dr is not None and dr[0] < now:
                drains.popleft()
                size = dr[1]
                fifo.popleft()
                queue._len_bytes -= size
                stats.dequeued_packets += 1
                stats.dequeued_bytes += size
                link.bytes_sent += size
                link.packets_sent += 1
                dr = drains[0] if drains else None
            else:
                break

    # --- legacy pump ----------------------------------------------------

    def _pump(self) -> None:
        if self.link.busy:
            return
        packet = self.queue.pop()
        if packet is not None:
            self.link.transmit(packet, on_done=self._pump)

    def __repr__(self) -> str:
        return f"EgressPort({self.name}, qlen={self.queue.len_packets})"


class Switch:
    """Output-queued switch with static destination-based forwarding.

    Attributes:
        name: Label for traces and error messages.
    """

    def __init__(self, sim: Simulator, name: str = "switch"):
        self._sim = sim
        self.name = name
        self._ports: list[EgressPort] = []
        self._routes: dict[int, EgressPort] = {}
        self._default_port: Optional[EgressPort] = None
        self.forwarded_packets = 0

    @property
    def ports(self) -> list[EgressPort]:
        """All egress ports, in attachment order."""
        return list(self._ports)

    def attach_port(self, link: Link, queue: DropTailQueue,
                    name: str = "") -> EgressPort:
        """Create an egress port that drains ``queue`` onto ``link``."""
        port = EgressPort(self._sim, link, queue,
                          name or f"{self.name}.p{len(self._ports)}")
        port._switch = self
        self._ports.append(port)
        return port

    def add_route(self, dst: int, port: EgressPort) -> None:
        """Forward packets destined to host address ``dst`` via ``port``."""
        if port not in self._ports:
            raise ValueError(f"{self.name}: route to unattached port")
        self._routes[dst] = port

    def set_default_route(self, port: EgressPort) -> None:
        """Port used for any destination without an explicit route."""
        if port not in self._ports:
            raise ValueError(f"{self.name}: default route to unattached port")
        self._default_port = port

    def receive(self, packet: Packet) -> None:
        """Forward an arriving packet to its egress port (PacketSink API)."""
        port = self._routes.get(packet.dst, self._default_port)
        if port is None:
            raise RuntimeError(
                f"{self.name}: no route for destination {packet.dst}")
        self.forwarded_packets += 1
        port.enqueue(packet)

    def __repr__(self) -> str:
        return f"Switch({self.name}, ports={len(self._ports)})"
