"""Packet-level network model.

Built on :mod:`repro.simcore`, this package models the paper's simulation
environment (Section 4): point-to-point links with serialization and
propagation delay, output-queued switches whose egress queues tail-drop and
ECN-mark at a configurable threshold, shared switch buffers, host NICs, and a
dumbbell topology builder matching the paper's setup (N senders -> ToR ->
ToR -> one receiver).

It also contains :mod:`repro.netsim.fluid`, the millisecond-granularity fluid
ToR queue used by the Section 3 production-fleet model, which shares the same
queueing physics (queue ~= aggregate window - BDP, all-or-nothing ECN
marking, overflow drops) at a coarser timescale.
"""

from repro.netsim.fluid import (FluidBurstTrace, FluidConfig, FluidIncast,
                                degenerate_point_flows)
from repro.netsim.packet import ECN, Packet
from repro.netsim.link import Link
from repro.netsim.queues import DropTailQueue, QueueStats
from repro.netsim.buffers import BufferPool, SharedBufferPool, StaticBufferPool
from repro.netsim.switch import EgressPort, Switch
from repro.netsim.nic import HostNIC
from repro.netsim.host import Host
from repro.netsim.impair import Impairment
from repro.netsim.leafspine import (LeafSpine, LeafSpineConfig,
                                    build_leaf_spine)
from repro.netsim.topology import (Dumbbell, DumbbellConfig, Rack,
                                   RackConfig, build_dumbbell, build_rack)

__all__ = [
    "FluidBurstTrace",
    "FluidConfig",
    "FluidIncast",
    "degenerate_point_flows",
    "ECN",
    "Packet",
    "Link",
    "DropTailQueue",
    "QueueStats",
    "BufferPool",
    "SharedBufferPool",
    "StaticBufferPool",
    "EgressPort",
    "Switch",
    "HostNIC",
    "Host",
    "Impairment",
    "Dumbbell",
    "DumbbellConfig",
    "LeafSpine",
    "LeafSpineConfig",
    "build_leaf_spine",
    "Rack",
    "RackConfig",
    "build_dumbbell",
    "build_rack",
]
