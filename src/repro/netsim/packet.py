"""Packet model.

One class covers both TCP data segments and pure ACKs; millions of these are
created per experiment, so the class uses ``__slots__`` and plain attributes
rather than dataclass machinery.

ECN follows RFC 3168: data packets from ECN-capable senders carry ``ECT``;
congested queues rewrite that to ``CE``; the receiver reflects ``CE`` back to
the sender via the ``ece`` flag on ACKs (the TCP header's ECE bit).
"""

from __future__ import annotations

import enum
from typing import Optional

TCP_IP_HEADER_BYTES = 40
"""IPv4 + TCP header overhead carried by every packet."""

DEFAULT_MSS = 1460
"""Maximum segment size for a 1500-byte MTU (the paper's configuration)."""


class ECN(enum.IntEnum):
    """IP-header ECN codepoint."""

    NOT_ECT = 0  # sender is not ECN-capable
    ECT = 1      # ECN-capable transport
    CE = 2       # congestion experienced (set by a marking queue)


class Packet:
    """A network packet (TCP data segment or ACK).

    Attributes:
        flow_id: Identifier of the TCP connection this packet belongs to.
        src: Source host address.
        dst: Destination host address.
        seq: For data, the byte offset of the first payload byte. For ACKs,
            unused (0).
        payload_bytes: TCP payload length; 0 for pure ACKs.
        is_ack: Whether this is a pure ACK.
        size_bytes: Total on-wire size (payload plus IP/TCP headers).
            Precomputed at construction — the queue/link hot paths read it
            several times per packet — and valid because ``payload_bytes``
            is immutable after construction.
        ack_seq: Cumulative acknowledgment (next byte expected); ACKs only.
        ece: TCP-header ECN-Echo flag; ACKs only.
        sack_blocks: Selective-ACK ranges ``((start, end), ...)`` above the
            cumulative ACK; ACKs only, empty unless SACK is negotiated.
        rwnd_bytes: Receiver-advertised window; ACKs only, ``None`` means
            unlimited (the default throughout the paper's experiments).
        ecn: IP-header ECN codepoint.
        is_retransmit: Whether this data segment is a retransmission (used by
            the host-side measurement model, mirroring what Millisampler
            infers from TCP state in production).
        sent_time_ns: When the sender transmitted this packet; ``None`` until
            stamped. Used for RTT sampling.
        incast_degree: Pulser-style explicit incast notification stamped
            onto ACK-path packets by an instrumented switch port: the number
            of distinct flows recently seen converging on the congested
            egress. ``None`` (the default) on every packet unless a
            mitigation scheme installs the stamping hook.
        fec_block: For FEC repair packets, the ``(start, end)`` byte range
            of the block this packet protects; ``None`` for ordinary
            segments and ACKs.
    """

    __slots__ = ("flow_id", "src", "dst", "seq", "payload_bytes", "is_ack",
                 "ack_seq", "ece", "ecn", "is_retransmit", "sent_time_ns",
                 "sack_blocks", "rwnd_bytes", "size_bytes", "incast_degree",
                 "fec_block")

    def __init__(self, flow_id: int, src: int, dst: int, seq: int = 0,
                 payload_bytes: int = 0, is_ack: bool = False,
                 ack_seq: int = 0, ece: bool = False, ecn: ECN = ECN.NOT_ECT,
                 is_retransmit: bool = False,
                 sent_time_ns: Optional[int] = None,
                 sack_blocks: tuple = (),
                 rwnd_bytes: Optional[int] = None,
                 incast_degree: Optional[int] = None,
                 fec_block: Optional[tuple] = None):
        if payload_bytes < 0:
            raise ValueError(f"payload must be >= 0, got {payload_bytes}")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.seq = seq
        self.payload_bytes = payload_bytes
        self.size_bytes = payload_bytes + TCP_IP_HEADER_BYTES
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.ece = ece
        self.ecn = ecn
        self.is_retransmit = is_retransmit
        self.sent_time_ns = sent_time_ns
        self.sack_blocks = sack_blocks
        self.rwnd_bytes = rwnd_bytes
        self.incast_degree = incast_degree
        self.fec_block = fec_block

    @property
    def end_seq(self) -> int:
        """One past the last payload byte covered by this segment."""
        return self.seq + self.payload_bytes

    @property
    def ecn_capable(self) -> bool:
        """Whether a congested queue may CE-mark this packet instead of
        dropping it below capacity."""
        return self.ecn != ECN.NOT_ECT

    def mark_ce(self) -> None:
        """Rewrite the ECN codepoint to Congestion Experienced."""
        self.ecn = ECN.CE

    def __repr__(self) -> str:
        if self.is_ack:
            ece = " ECE" if self.ece else ""
            return (f"Ack(flow={self.flow_id} {self.src}->{self.dst} "
                    f"ack={self.ack_seq}{ece})")
        kind = "Rtx" if self.is_retransmit else "Data"
        ce = " CE" if self.ecn == ECN.CE else ""
        return (f"{kind}(flow={self.flow_id} {self.src}->{self.dst} "
                f"seq={self.seq}+{self.payload_bytes}{ce})")


def data_packet(flow_id: int, src: int, dst: int, seq: int,
                payload_bytes: int, is_retransmit: bool = False,
                ecn_capable: bool = True) -> Packet:
    """Build a TCP data segment."""
    return Packet(flow_id, src, dst, seq=seq, payload_bytes=payload_bytes,
                  ecn=ECN.ECT if ecn_capable else ECN.NOT_ECT,
                  is_retransmit=is_retransmit)


def ack_packet(flow_id: int, src: int, dst: int, ack_seq: int,
               ece: bool = False, sack_blocks: tuple = (),
               rwnd_bytes: Optional[int] = None) -> Packet:
    """Build a pure ACK. ACKs are not ECN-capable (they are never marked),
    matching common datacenter ECN configurations."""
    return Packet(flow_id, src, dst, is_ack=True, ack_seq=ack_seq, ece=ece,
                  ecn=ECN.NOT_ECT, sack_blocks=sack_blocks,
                  rwnd_bytes=rwnd_bytes)
