"""Topology builders.

:func:`build_dumbbell` constructs the paper's Section 4 environment:

    N senders --(10 Gbps)--> ToR-A --(100 Gbps)--> ToR-B --(10 Gbps)--> receiver

Incast congestion occurs at ToR-B's downlink to the receiver, so that port's
queue is exposed as :attr:`Dumbbell.bottleneck_queue` (the series Figures 5
and 6 plot). Every switch port uses the same queue configuration: capacity
1333 packets (2 MB at 1500-byte MTU) and an ECN marking threshold of 65
packets, both overridable.

Propagation delay per link defaults to 5 us; with three hops each way the
base round-trip time is 30 us, the paper's figure for modern datacenters.

:func:`build_rack` extends the dumbbell with *several* receivers on the
same destination ToR, each with its own sender group. With a shared buffer
pool, simultaneous bursts to different receivers contend for the same
switch memory — the rack-level contention that Sections 3.4 and 4.1.1
blame for production losses at flow counts the private-queue model
absorbs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.netsim.buffers import BufferPool, SharedBufferPool
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.queues import DropTailQueue
from repro.netsim.switch import Switch
from repro.simcore.kernel import Simulator


@dataclass
class DumbbellConfig:
    """Parameters of the dumbbell topology (defaults = the paper's setup)."""

    n_senders: int = 100
    host_rate_bps: float = units.gbps(10.0)
    trunk_rate_bps: float = units.gbps(100.0)
    link_prop_delay_ns: int = units.usec(5.0)
    queue_capacity_packets: int = 1333
    ecn_threshold_packets: Optional[int] = 65
    shared_buffer_bytes: Optional[int] = None
    shared_buffer_alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.n_senders <= 0:
            raise ValueError("n_senders must be positive")

    @property
    def base_rtt_ns(self) -> int:
        """Propagation-only round-trip time between a sender and the
        receiver (three hops each way)."""
        return 6 * self.link_prop_delay_ns

    @property
    def bdp_bytes(self) -> int:
        """Bandwidth-delay product of the bottleneck (receiver downlink)."""
        return units.bdp_bytes(self.host_rate_bps, self.base_rtt_ns)


@dataclass
class Dumbbell:
    """A built dumbbell topology."""

    sim: Simulator
    config: DumbbellConfig
    senders: list[Host]
    receiver: Host
    tor_senders: Switch
    tor_receiver: Switch
    bottleneck_queue: DropTailQueue
    trunk_queue: DropTailQueue
    pools: list[BufferPool] = field(default_factory=list)


def _make_queue(cfg: DumbbellConfig, pool: Optional[BufferPool],
                name: str) -> DropTailQueue:
    return DropTailQueue(capacity_packets=cfg.queue_capacity_packets,
                         ecn_threshold_packets=cfg.ecn_threshold_packets,
                         pool=pool, name=name)


@dataclass
class RackConfig:
    """Parameters of the multi-receiver rack topology."""

    n_receivers: int = 2
    senders_per_receiver: int = 100
    host_rate_bps: float = units.gbps(10.0)
    trunk_rate_bps: float = units.gbps(100.0)
    link_prop_delay_ns: int = units.usec(5.0)
    queue_capacity_packets: int = 1333
    ecn_threshold_packets: Optional[int] = 65
    shared_buffer_bytes: Optional[int] = 2_000_000
    shared_buffer_alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.n_receivers <= 0 or self.senders_per_receiver <= 0:
            raise ValueError("receiver/sender counts must be positive")


@dataclass
class Rack:
    """A built multi-receiver rack."""

    sim: Simulator
    config: RackConfig
    receivers: list[Host]
    sender_groups: list[list[Host]]
    tor_senders: Switch
    tor_receivers: Switch
    receiver_queues: list[DropTailQueue]
    pool: Optional[BufferPool]


def build_rack(sim: Simulator, config: Optional[RackConfig] = None) -> Rack:
    """Build a rack: one sender ToR, one receiver ToR hosting several
    receivers whose downlink queues may share buffer memory."""
    cfg = config or RackConfig()
    tor_a = Switch(sim, name="rack.torA")
    tor_b = Switch(sim, name="rack.torB")
    pool: Optional[BufferPool] = None
    if cfg.shared_buffer_bytes is not None:
        pool = SharedBufferPool(cfg.shared_buffer_bytes,
                                cfg.shared_buffer_alpha)

    def make_queue(name: str, shared: bool) -> DropTailQueue:
        return DropTailQueue(
            capacity_packets=cfg.queue_capacity_packets,
            ecn_threshold_packets=cfg.ecn_threshold_packets,
            pool=pool if shared else None, name=name)

    sender_groups: list[list[Host]] = []
    for group in range(cfg.n_receivers):
        hosts = [Host(sim, name=f"rack.g{group}.sender{i}")
                 for i in range(cfg.senders_per_receiver)]
        for host in hosts:
            uplink = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                          name=f"{host.name}->torA")
            uplink.connect(tor_a)
            host.nic.connect(uplink)
            downlink = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                            name=f"torA->{host.name}")
            downlink.connect(host.nic)
            port = tor_a.attach_port(
                downlink, make_queue(f"torA->{host.name}", shared=False))
            tor_a.add_route(host.address, port)
        sender_groups.append(hosts)

    trunk_ab = Link(sim, cfg.trunk_rate_bps, cfg.link_prop_delay_ns,
                    name="rack.torA->torB")
    trunk_ab.connect(tor_b)
    trunk_port_a = tor_a.attach_port(
        trunk_ab, make_queue("rack.torA->torB", shared=False))
    tor_a.set_default_route(trunk_port_a)

    trunk_ba = Link(sim, cfg.trunk_rate_bps, cfg.link_prop_delay_ns,
                    name="rack.torB->torA")
    trunk_ba.connect(tor_a)
    trunk_port_b = tor_b.attach_port(
        trunk_ba, make_queue("rack.torB->torA", shared=False))
    tor_b.set_default_route(trunk_port_b)

    receivers: list[Host] = []
    receiver_queues: list[DropTailQueue] = []
    for group in range(cfg.n_receivers):
        receiver = Host(sim, name=f"rack.receiver{group}")
        down = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                    name=f"torB->{receiver.name}")
        down.connect(receiver.nic)
        # Receiver downlinks are the contended ports: they draw from the
        # shared pool (when configured).
        queue = make_queue(f"torB->{receiver.name}", shared=True)
        port = tor_b.attach_port(down, queue)
        tor_b.add_route(receiver.address, port)
        up = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                  name=f"{receiver.name}->torB")
        up.connect(tor_b)
        receiver.nic.connect(up)
        receivers.append(receiver)
        receiver_queues.append(queue)

    # Chain-handoff declarations (see build_dumbbell): each trunk queue is
    # fed only by host NICs whose access links share one propagation
    # delay — sender uplinks feed the A->B trunk (data), receiver uplinks
    # feed the B->A trunk (ACKs).
    for hosts in sender_groups:
        for host in hosts:
            host.nic.compose_chain_into(trunk_port_a)
    for receiver in receivers:
        receiver.nic.compose_chain_into(trunk_port_b)

    return Rack(sim=sim, config=cfg, receivers=receivers,
                sender_groups=sender_groups, tor_senders=tor_a,
                tor_receivers=tor_b, receiver_queues=receiver_queues,
                pool=pool)


def build_dumbbell(sim: Simulator,
                   config: Optional[DumbbellConfig] = None) -> Dumbbell:
    """Build the paper's dumbbell and wire up all forwarding state.

    Returns a :class:`Dumbbell`; callers then create TCP connections between
    ``senders[i]`` and ``receiver`` and attach applications.
    """
    cfg = config or DumbbellConfig()
    tor_a = Switch(sim, name="torA")
    tor_b = Switch(sim, name="torB")

    pools: list[BufferPool] = []
    pool_a: Optional[BufferPool] = None
    pool_b: Optional[BufferPool] = None
    if cfg.shared_buffer_bytes is not None:
        pool_a = SharedBufferPool(cfg.shared_buffer_bytes,
                                  cfg.shared_buffer_alpha)
        pool_b = SharedBufferPool(cfg.shared_buffer_bytes,
                                  cfg.shared_buffer_alpha)
        pools = [pool_a, pool_b]

    senders = [Host(sim, name=f"sender{i}") for i in range(cfg.n_senders)]
    receiver = Host(sim, name="receiver")
    sender_downlink_ports = []

    # Sender access links: host -> ToR-A, and the reverse port for ACKs.
    for sender in senders:
        uplink = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                      name=f"{sender.name}->torA")
        uplink.connect(tor_a)
        sender.nic.connect(uplink)

        downlink = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                        name=f"torA->{sender.name}")
        downlink.connect(sender.nic)
        port = tor_a.attach_port(
            downlink, _make_queue(cfg, pool_a, f"torA->{sender.name}"))
        tor_a.add_route(sender.address, port)
        sender_downlink_ports.append(port)

    # Trunk: ToR-A <-> ToR-B.
    trunk_ab = Link(sim, cfg.trunk_rate_bps, cfg.link_prop_delay_ns,
                    name="torA->torB")
    trunk_ab.connect(tor_b)
    trunk_queue = _make_queue(cfg, pool_a, "torA->torB")
    trunk_port_a = tor_a.attach_port(trunk_ab, trunk_queue)
    tor_a.set_default_route(trunk_port_a)

    trunk_ba = Link(sim, cfg.trunk_rate_bps, cfg.link_prop_delay_ns,
                    name="torB->torA")
    trunk_ba.connect(tor_a)
    trunk_port_b = tor_b.attach_port(
        trunk_ba, _make_queue(cfg, pool_b, "torB->torA"))
    tor_b.set_default_route(trunk_port_b)

    # Receiver access: ToR-B -> receiver is the incast bottleneck.
    recv_down = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                     name="torB->receiver")
    recv_down.connect(receiver.nic)
    bottleneck_queue = _make_queue(cfg, pool_b, "torB->receiver")
    recv_port = tor_b.attach_port(recv_down, bottleneck_queue)
    tor_b.add_route(receiver.address, recv_port)

    recv_up = Link(sim, cfg.host_rate_bps, cfg.link_prop_delay_ns,
                   name="receiver->torB")
    recv_up.connect(tor_b)
    receiver.nic.connect(recv_up)

    # Sole-feeder declarations (licence for the composed egress fast path,
    # see repro.netsim.switch): hosts only exchange traffic with the
    # receiver, so everything entering the receiver-downlink queue came off
    # the A->B trunk, and everything entering a sender-downlink queue (the
    # ACK return path) came off the B->A trunk.
    trunk_port_a.compose_route(receiver.address, recv_port)
    for sender, port in zip(senders, sender_downlink_ports):
        trunk_port_b.compose_route(sender.address, port)
    # All sender access links share one propagation delay, so the order in
    # which their NIC chain events fire *is* the order their packets reach
    # ToR-A: each chain may hand its packet straight into the trunk port's
    # composed virtual queue instead of scheduling the switch-delivery
    # event.
    for sender in senders:
        sender.nic.compose_chain_into(trunk_port_a)
    # The receiver only ever emits ACKs toward the senders, all of which
    # take ToR-B's default route: its NIC is the sole feeder of the
    # reverse-trunk queue, so the whole ACK path (receiver NIC -> trunk ->
    # sender downlink) composes into a single delivery event.
    receiver.nic.compose_into(trunk_port_b)

    return Dumbbell(sim=sim, config=cfg, senders=senders, receiver=receiver,
                    tor_senders=tor_a, tor_receiver=tor_b,
                    bottleneck_queue=bottleneck_queue,
                    trunk_queue=trunk_queue, pools=pools)
