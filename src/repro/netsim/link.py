"""Point-to-point links.

A :class:`Link` models serialization delay (packet size over link rate) plus
fixed propagation delay. Links are *pull-fed*: the owning port keeps the link
busy one packet at a time and is called back when the transmitter frees up,
which is how output-queued switch ports drain their queues.
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol

from repro import units
from repro.netsim.packet import Packet
from repro.simcore.kernel import Simulator


class PacketSink(Protocol):
    """Anything that can accept a delivered packet."""

    def receive(self, packet: Packet) -> None:
        """Accept ``packet`` at the current simulation time."""
        ...


class Link:
    """Unidirectional point-to-point link.

    Attributes:
        rate_bps: Link bandwidth in bits per second.
        prop_delay_ns: One-way propagation delay.
        name: Human-readable label used in traces and errors.
        busy: Whether a packet is currently being serialized. Read-only
            for callers; the link maintains it.
    """

    def __init__(self, sim: Simulator, rate_bps: float, prop_delay_ns: int,
                 name: str = "link"):
        if rate_bps <= 0:
            raise ValueError(f"{name}: rate must be positive, got {rate_bps}")
        if prop_delay_ns < 0:
            raise ValueError(
                f"{name}: propagation delay must be >= 0, got {prop_delay_ns}")
        self._sim = sim
        self.rate_bps = rate_bps
        self.prop_delay_ns = prop_delay_ns
        self.name = name
        self._sink: Optional[PacketSink] = None
        self.busy = False
        self.bytes_sent = 0
        self.packets_sent = 0
        # Serialization times memoized by packet size: traffic uses only a
        # handful of distinct sizes (full MSS, pure ACK, one tail
        # segment), so a dict hit replaces the ceil-division arithmetic.
        self._tx_time_cache: dict[int, int] = {}

    def connect(self, sink: PacketSink) -> None:
        """Attach the receiving endpoint."""
        self._sink = sink

    @property
    def sink(self) -> Optional[PacketSink]:
        """The receiving endpoint, or ``None`` before :meth:`connect`."""
        return self._sink

    def tx_time_ns(self, packet: Packet) -> int:
        """Serialization delay for ``packet`` on this link."""
        size = packet.size_bytes
        tx = self._tx_time_cache.get(size)
        if tx is None:
            tx = units.tx_time_ns(size, self.rate_bps)
            self._tx_time_cache[size] = tx
        return tx

    def transmit(self, packet: Packet,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        """Begin transmitting ``packet``.

        ``on_done`` fires when the transmitter frees up (end of
        serialization); the packet is delivered to the sink one propagation
        delay later. Raises if the link is already busy — the caller is
        responsible for serializing access (ports do this).
        """
        if self._sink is None:
            raise RuntimeError(f"{self.name}: transmit before connect()")
        if self.busy:
            raise RuntimeError(f"{self.name}: transmit while busy")
        self.busy = True
        tx = self.tx_time_ns(packet)
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        self._sim.schedule_fire(tx, self._tx_complete, (packet, on_done))

    def _tx_complete(self, packet: Packet,
                     on_done: Optional[Callable[[], None]]) -> None:
        self.busy = False
        # Deliver after propagation; the transmitter is already free, so the
        # on_done callback may start the next packet before this one lands.
        sink = self._sink
        assert sink is not None
        if self.prop_delay_ns == 0:
            sink.receive(packet)
        else:
            self._sim.schedule_fire(self.prop_delay_ns, sink.receive,
                                    (packet,))
        if on_done is not None:
            on_done()

    def __repr__(self) -> str:
        return (f"Link({self.name}, {units.bps_to_gbps(self.rate_bps):g} Gbps, "
                f"prop={self.prop_delay_ns} ns)")
