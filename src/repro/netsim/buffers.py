"""Switch buffer-sharing models.

The paper's Section 4 simulations give each egress queue its own private
capacity (1333 packets / 2 MB), but Section 3 and Section 4.1.1 stress that
production switches *share* buffer memory between ports: when other ports are
also absorbing bursts, the capacity effectively available to one queue is far
below its configured limit, so losses occur at lower flow counts than the
private-buffer model predicts.

Two pool implementations capture both worlds:

- :class:`StaticBufferPool` — each queue may always use up to its own
  configured limit (the NS3-style private buffer; the paper's default).
- :class:`SharedBufferPool` — a fixed total is shared by all queues, with the
  classic dynamic-threshold (DT) admission rule: a packet is admitted only if
  the queue's occupancy stays below ``alpha * remaining_free_memory``.

Queues reserve bytes on enqueue and release them on dequeue or drop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod


class BufferPool(ABC):
    """Admission controller for bytes entering switch queues."""

    @abstractmethod
    def try_reserve(self, queue_id: int, current_bytes: int,
                    size_bytes: int) -> bool:
        """Ask to admit ``size_bytes`` into queue ``queue_id`` whose current
        occupancy is ``current_bytes``. Returns ``True`` and reserves the
        bytes on success."""

    @abstractmethod
    def release(self, queue_id: int, size_bytes: int) -> None:
        """Return ``size_bytes`` previously reserved by ``queue_id``."""


class StaticBufferPool(BufferPool):
    """Private per-queue buffering: admission is limited only by each
    queue's own capacity, which the queue itself enforces. The pool tracks
    total usage for observability."""

    def __init__(self) -> None:
        self.used_bytes = 0

    def try_reserve(self, queue_id: int, current_bytes: int,
                    size_bytes: int) -> bool:
        self.used_bytes += size_bytes
        return True

    def release(self, queue_id: int, size_bytes: int) -> None:
        self.used_bytes -= size_bytes
        if self.used_bytes < 0:
            raise RuntimeError("buffer pool released more than reserved")


class SharedBufferPool(BufferPool):
    """Dynamic-threshold shared buffer (Choudhury & Hahne).

    A queue may grow only while its occupancy is below
    ``alpha * (total_bytes - used_bytes)``. With several active queues the
    per-queue ceiling shrinks, reproducing the production effect the paper
    describes: simultaneous bursts on other ports consume shared memory and
    cause drops well below the configured per-queue limit.

    Attributes:
        total_bytes: Shared memory size.
        alpha: Dynamic-threshold aggressiveness factor.
    """

    def __init__(self, total_bytes: int, alpha: float = 1.0):
        if total_bytes <= 0:
            raise ValueError(f"total_bytes must be positive, got {total_bytes}")
        if alpha <= 0:
            raise ValueError(f"alpha must be positive, got {alpha}")
        self.total_bytes = total_bytes
        self.alpha = alpha
        self.used_bytes = 0
        self.rejections = 0

    @property
    def free_bytes(self) -> int:
        """Unreserved shared memory."""
        return self.total_bytes - self.used_bytes

    def threshold_bytes(self) -> float:
        """Current per-queue occupancy ceiling under the DT rule."""
        return self.alpha * self.free_bytes

    def try_reserve(self, queue_id: int, current_bytes: int,
                    size_bytes: int) -> bool:
        if self.used_bytes + size_bytes > self.total_bytes:
            self.rejections += 1
            return False
        if current_bytes + size_bytes > self.threshold_bytes():
            self.rejections += 1
            return False
        self.used_bytes += size_bytes
        return True

    def release(self, queue_id: int, size_bytes: int) -> None:
        self.used_bytes -= size_bytes
        if self.used_bytes < 0:
            raise RuntimeError("buffer pool released more than reserved")

    def occupy(self, size_bytes: int) -> None:
        """Statically consume shared memory, modelling contention from ports
        outside the simulated topology (rack-level contention in Section 3).
        """
        if size_bytes < 0 or self.used_bytes + size_bytes > self.total_bytes:
            raise ValueError("invalid external occupancy")
        self.used_bytes += size_bytes
