"""Host: a NIC plus the TCP connections terminating on it."""

from __future__ import annotations

from repro.netsim.nic import HostNIC, PacketHandler
from repro.simcore.kernel import Simulator


class Host:
    """An end host identified by an integer address.

    Hosts are thin: all protocol logic lives in the connections registered on
    the NIC, and all workload logic lives in the applications that drive
    those connections.

    Attributes:
        address: Unique host address used by switch forwarding.
        nic: The host's network interface.
    """

    _next_address = 0

    def __init__(self, sim: Simulator, name: str = "",
                 address: int | None = None):
        self._sim = sim
        if address is None:
            address = Host._next_address
            Host._next_address += 1
        self.address = address
        self.name = name or f"host{address}"
        self.nic = HostNIC(sim, address, name=f"{self.name}.nic")

    def register_flow(self, flow_id: int, handler: PacketHandler) -> None:
        """Convenience passthrough to the NIC's flow demux."""
        self.nic.register_flow(flow_id, handler)

    def __repr__(self) -> str:
        return f"Host({self.name}, addr={self.address})"
