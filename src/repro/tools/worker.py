"""Distributed campaign worker: connect, pull units, execute, stream back.

``python -m repro.tools.worker --connect HOST:PORT`` turns any machine
that can import :mod:`repro` into an executor for a coordinator started
with ``python -m repro.experiments --backend distributed --listen ...``.
The worker speaks the length-prefixed JSON frame protocol of
:mod:`repro.experiments.engine.distributed`, executes every unit through
the exact same :func:`repro.experiments.engine.core.execute_unit` path
local runs use (so payloads are byte-identical wherever they run), and
returns results as sealed checksum-footer blobs — the result cache's
on-disk format, verified again by the coordinator on receipt.

Liveness and chaos semantics:

- a daemon **heartbeat thread** keeps frames flowing even while a unit
  executes, so the coordinator can tell "slow unit" from "dead worker";
- distributed fault modes (``worker_crash`` / ``worker_hang`` /
  ``conn_drop``) arrive *inside* ``unit`` frames and fire on the unit's
  **dispatch index** (how many times any coordinator handed it out), so
  an uncharged requeue cannot re-fire a ``times=1`` fault forever;
- ``conn_drop`` abruptly closes the socket mid-lease and reconnects —
  the transient-partition case: the coordinator requeues the unit
  uncharged and this worker rejoins the fleet;
- a protocol-version mismatch is a **clean error** (exit code 3): the
  coordinator rejects the hello before anything is leased.

Exit codes: 0 success (shutdown received or ``--max-units`` reached),
2 usage error, 3 rejected at handshake, 4 connection lost/failed past
``--reconnect-attempts``.

Note: when several workers run as *threads* of one process (the loopback
test suite), the per-unit event counts reported to the coordinator come
from a process-global kernel counter and may interleave; payloads are
unaffected (every unit derives its RNG from ``(seed, name)`` alone).
"""

from __future__ import annotations

import argparse
import contextlib
import os
import re
import socket
import struct
import sys
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.engine.cache import ResultCache
from repro.experiments.engine.core import (_describe_exception, execute_unit,
                                           jittered_backoff)
from repro.experiments.engine.distributed import (MSG_ERROR, MSG_HEARTBEAT,
                                                  MSG_HELLO, MSG_REJECT,
                                                  MSG_REQUEST, MSG_RESULT,
                                                  MSG_SHUTDOWN, MSG_UNIT,
                                                  MSG_WAIT, MSG_WELCOME,
                                                  PROTOCOL_NAME,
                                                  PROTOCOL_VERSION,
                                                  FrameDecoder,
                                                  ProtocolError,
                                                  encode_frame,
                                                  encode_payload,
                                                  faults_from_wire,
                                                  parse_hostport,
                                                  unit_from_wire)
from repro.experiments.engine.faults import (DISTRIBUTED_MODES,
                                             MODE_CONN_DROP, WORKER_MODES,
                                             FaultInjected)

#: Exit codes (also the module's public contract for the CLI tests).
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_REJECTED = 3
EXIT_CONNECTION = 4

#: Default seconds between heartbeat frames.
DEFAULT_HEARTBEAT_INTERVAL_S = 2.0

#: How long (and at what base delay) to retry the initial TCP connect —
#: covers the two-terminal quickstart where the worker starts first.
#: Actual sleeps are jittered-exponential on the base delay (capped at
#: :data:`RETRY_DELAY_CAP_S`), so a whole fleet restarting at once never
#: hammers a recovering coordinator in lockstep.
CONNECT_RETRY_WINDOW_S = 15.0
CONNECT_RETRY_DELAY_S = 0.25
RETRY_DELAY_CAP_S = 2.0

#: Longest worker token stamped into cache spill-file names; ids beyond
#: it are truncated (tokens only need to be *distinguishable to their
#: owner* for sweep_stale, not globally unique, and file-name length
#: limits are real).
MAX_WORKER_TOKEN_LEN = 64


class WorkerRejected(RuntimeError):
    """The coordinator refused this worker (handshake reject, or a unit
    frame that fails identity verification); nothing held, exit clean."""


class ConnectionLost(RuntimeError):
    """The coordinator connection failed mid-session."""


class _ConnDropRequested(Exception):
    """Internal: a ``conn_drop`` fault asked for an abrupt disconnect."""


def sanitize_worker_token(worker_id: str) -> str:
    """Turn an arbitrary worker id into a valid cache spill-file token.

    :class:`ResultCache` tokens must be dot-free and filesystem-safe
    (``[A-Za-z0-9][A-Za-z0-9_-]*``), but worker ids default to
    ``<hostname>-<pid>`` and hostnames may carry dots. Over-long ids are
    truncated to :data:`MAX_WORKER_TOKEN_LEN` so spill-file names stay
    under filesystem name limits.
    """
    token = re.sub(r"[^A-Za-z0-9_-]", "-", worker_id).lstrip("-_")
    return token[:MAX_WORKER_TOKEN_LEN] or "worker"


class _Connection:
    """One live coordinator connection with a send lock.

    The lock serializes the main loop's frames with the heartbeat
    thread's; frame boundaries must never interleave on the wire.
    """

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.decoder = FrameDecoder()
        self.send_lock = threading.Lock()
        self.inbox: list[dict] = []

    def send(self, message: dict) -> None:
        """Send one frame atomically; :class:`ConnectionLost` on failure."""
        frame = encode_frame(message)
        try:
            with self.send_lock:
                self.sock.sendall(frame)
        except OSError as exc:
            raise ConnectionLost(f"send failed: {exc}") from exc

    def recv_message(self) -> dict:
        """Block until the next complete frame arrives."""
        while not self.inbox:
            try:
                data = self.sock.recv(1 << 16)
            except socket.timeout as exc:
                raise ConnectionLost("coordinator silent past the socket "
                                     "timeout") from exc
            except OSError as exc:
                raise ConnectionLost(f"recv failed: {exc}") from exc
            if not data:
                raise ConnectionLost("coordinator closed the connection")
            try:
                self.inbox.extend(self.decoder.feed(data))
            except ProtocolError as exc:
                raise ConnectionLost(f"protocol error from coordinator: "
                                     f"{exc}") from exc
        return self.inbox.pop(0)

    def close(self, *, abrupt: bool = False) -> None:
        """Close the socket; ``abrupt`` sends an RST instead of a FIN
        (the ``conn_drop`` fault imitating a yanked cable)."""
        with self.send_lock:
            if abrupt:
                with contextlib.suppress(OSError):
                    self.sock.setsockopt(socket.SOL_SOCKET,
                                         socket.SO_LINGER,
                                         struct.pack("ii", 1, 0))
            with contextlib.suppress(OSError):
                self.sock.close()


def connect(address: tuple[str, int], worker_id: str, *,
            timeout_s: float = 30.0,
            retry_window_s: float = CONNECT_RETRY_WINDOW_S) -> _Connection:
    """Dial the coordinator and complete the hello/welcome handshake.

    Retries the TCP connect for ``retry_window_s`` (workers may start
    before the coordinator binds), then raises :class:`ConnectionLost`.
    A ``reject`` answer raises :class:`WorkerRejected`.
    """
    deadline = time.monotonic() + retry_window_s
    sock: Optional[socket.socket] = None
    attempt = 0
    while sock is None:
        try:
            sock = socket.create_connection(address, timeout=timeout_s)
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise ConnectionLost(
                    f"could not connect to coordinator at "
                    f"{address[0]}:{address[1]}: {exc}") from exc
            attempt += 1
            time.sleep(jittered_backoff(CONNECT_RETRY_DELAY_S, attempt,
                                        cap_s=RETRY_DELAY_CAP_S))
    sock.settimeout(timeout_s)
    conn = _Connection(sock)
    conn.send({"type": MSG_HELLO, "protocol": PROTOCOL_NAME,
               "version": PROTOCOL_VERSION, "worker": worker_id})
    answer = conn.recv_message()
    if answer.get("type") == MSG_REJECT:
        conn.close()
        raise WorkerRejected(answer.get("reason", "rejected"))
    if answer.get("type") != MSG_WELCOME:
        conn.close()
        raise ConnectionLost(f"expected welcome, got "
                             f"{answer.get('type')!r}")
    return conn


def _heartbeat_loop(conn: _Connection, worker_id: str,
                    interval_s: float, stop: threading.Event) -> None:
    """Daemon thread body: heartbeat until stopped or the send fails."""
    while not stop.wait(interval_s):
        try:
            conn.send({"type": MSG_HEARTBEAT, "worker": worker_id})
        except ConnectionLost:
            return


def _execute_frame(message: dict,
                   cache: Optional[ResultCache]) -> dict:
    """Run one ``unit`` frame; returns the ``result`` frame to send.

    Raises:
        _ConnDropRequested: A ``conn_drop`` fault matched this dispatch.
        ProtocolError: The frame's unit/fault specs are malformed or the
            recomputed cache key disagrees with the coordinator's (code
            or version drift between the two ends).
    """
    unit = unit_from_wire(message.get("unit"))
    key = message.get("key")
    if unit.cache_key() != key:
        raise ProtocolError(
            f"unit {unit.label}: recomputed cache key does not match the "
            f"coordinator's — worker and coordinator run different code "
            f"or repro versions")
    attempt = int(message.get("attempt", 0))
    dispatch = int(message.get("dispatch", 0))
    faults = faults_from_wire(message.get("faults", []))
    worker_faults = tuple(f for f in faults if f.mode in WORKER_MODES)
    # Distributed modes fire on the dispatch index (see module
    # docstring); worker_crash never returns, worker_hang sleeps with
    # heartbeats flowing then raises, conn_drop unwinds to the
    # reconnect path.
    for spec in (f for f in faults if f.mode in DISTRIBUTED_MODES):
        if not spec.should_fire(unit, dispatch):
            continue
        if spec.mode == MODE_CONN_DROP:
            if spec.marker:
                Path(spec.marker).touch()
            raise _ConnDropRequested(unit.label)
        try:
            spec.fire(unit, dispatch)  # exits (crash) or sleeps+raises
        except FaultInjected as exc:
            return {"type": MSG_RESULT, "key": key, "dispatch": dispatch,
                    "ok": False, "kind": "error",
                    "detail": _describe_exception(exc)}
    try:
        payload, wall_s, events, _pid = execute_unit(
            unit, attempt=attempt, faults=worker_faults)
    except Exception as exc:
        return {"type": MSG_RESULT, "key": key, "dispatch": dispatch,
                "ok": False, "kind": "error",
                "detail": _describe_exception(exc)}
    if cache is not None:
        cache.put(key, payload)
    return {"type": MSG_RESULT, "key": key, "dispatch": dispatch,
            "ok": True, "payload": encode_payload(payload),
            "wall_s": round(wall_s, 6), "events": events}


def run_worker(address: tuple[str, int], *,
               worker_id: Optional[str] = None,
               cache: Optional[ResultCache] = None,
               heartbeat_interval_s: float = DEFAULT_HEARTBEAT_INTERVAL_S,
               reconnect_attempts: int = 1,
               max_units: Optional[int] = None) -> int:
    """Serve a coordinator until it shuts us down; returns units executed.

    This is the in-process entry the loopback tests drive from threads;
    the CLI :func:`main` is a thin wrapper. One unit executes at a time
    (the coordinator leases accordingly); the heartbeat thread keeps the
    connection demonstrably alive throughout.

    Args:
        address: Coordinator ``(host, port)``.
        worker_id: Fleet-unique identity; defaults to
            ``"<hostname>-<pid>"``.
        cache: Optional shared result cache to write payloads into (its
            ``worker_token`` should be this worker's sanitized id, so a
            coordinator can never mistake this worker's in-flight writes
            for dead-local-process garbage).
        heartbeat_interval_s: Seconds between heartbeat frames.
        reconnect_attempts: Reconnect budget after a lost (or
            fault-dropped) connection; 0 gives up on the first loss.
        max_units: Stop after this many executed units (tests).

    Raises:
        WorkerRejected: Handshake refused (version/protocol mismatch) or
            a unit frame failed identity verification.
        ConnectionLost: Connection failed beyond the reconnect budget.
    """
    worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
    executed = 0
    reconnects_left = reconnect_attempts
    while True:
        conn = connect(address, worker_id)
        stop = threading.Event()
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, worker_id, heartbeat_interval_s, stop),
            name=f"heartbeat-{worker_id}", daemon=True).start()
        try:
            conn.send({"type": MSG_REQUEST, "worker": worker_id})
            while True:
                message = conn.recv_message()
                mtype = message.get("type")
                if mtype == MSG_SHUTDOWN:
                    return executed
                if mtype == MSG_WAIT:
                    time.sleep(float(message.get("backoff_s", 0.05)))
                    conn.send({"type": MSG_REQUEST, "worker": worker_id})
                    continue
                if mtype != MSG_UNIT:
                    continue  # forward-compatible: ignore unknown types
                try:
                    result = _execute_frame(message, cache)
                except ProtocolError as exc:
                    # Malformed unit or identity drift: report and stop —
                    # executing anyway could poison the shared cache.
                    with contextlib.suppress(ConnectionLost):
                        conn.send({"type": MSG_ERROR, "detail": str(exc)})
                    raise WorkerRejected(str(exc)) from exc
                conn.send(result)
                if result.get("ok"):
                    executed += 1
                if max_units is not None and executed >= max_units:
                    return executed
                conn.send({"type": MSG_REQUEST, "worker": worker_id})
        except _ConnDropRequested:
            stop.set()
            conn.close(abrupt=True)
            if reconnects_left <= 0:
                raise ConnectionLost(
                    "connection dropped (injected) and no reconnect "
                    "budget remains") from None
            reconnects_left -= 1
            continue
        except ConnectionLost:
            stop.set()
            conn.close()
            if reconnects_left <= 0:
                raise
            reconnects_left -= 1
            # Jittered by how deep into the budget we are: a coordinator
            # restart must not see the whole fleet redial in lockstep.
            time.sleep(jittered_backoff(
                CONNECT_RETRY_DELAY_S,
                reconnect_attempts - reconnects_left,
                cap_s=RETRY_DELAY_CAP_S))
            continue
        finally:
            stop.set()
            conn.close()


def build_parser() -> argparse.ArgumentParser:
    """CLI parser for ``python -m repro.tools.worker``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.worker",
        description="Execute work units for a distributed repro "
                    "campaign coordinator.")
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address (e.g. 127.0.0.1:7777)")
    parser.add_argument("--worker-id", default=None,
                        help="fleet-unique worker identity "
                             "(default: <hostname>-<pid>)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="shared result-cache directory (should be "
                             "the coordinator's --cache-dir)")
    parser.add_argument("--no-cache", action="store_true",
                        help="do not write payloads to any result cache")
    parser.add_argument("--cache-server", default=None,
                        metavar="HOST:PORT",
                        help="shared cache server (python -m "
                             "repro.tools.cacheserver) to read through "
                             "and write behind; requires --cache-dir, "
                             "degrades to local-only when unreachable")
    parser.add_argument("--heartbeat-interval", type=float,
                        default=DEFAULT_HEARTBEAT_INTERVAL_S,
                        metavar="SECONDS",
                        help="seconds between liveness heartbeats "
                             "(default %(default)s)")
    parser.add_argument("--reconnect-attempts", type=int, default=1,
                        metavar="N",
                        help="reconnects allowed after a lost "
                             "connection (default %(default)s)")
    parser.add_argument("--max-units", type=int, default=None, metavar="N",
                        help="exit after executing N units (testing)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code (see module docstring)."""
    args = build_parser().parse_args(argv)
    try:
        address = parse_hostport(args.connect)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.heartbeat_interval <= 0:
        print("error: --heartbeat-interval must be positive",
              file=sys.stderr)
        return EXIT_USAGE
    if args.reconnect_attempts < 0:
        print("error: --reconnect-attempts must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    worker_id = args.worker_id or f"{socket.gethostname()}-{os.getpid()}"
    remote = None
    if args.cache_server is not None:
        if args.no_cache:
            print("error: --cache-server needs the local result cache "
                  "(drop --no-cache)", file=sys.stderr)
            return EXIT_USAGE
        if not args.cache_dir:
            print("error: --cache-server requires --cache-dir (the "
                  "remote tier layers over a local one)", file=sys.stderr)
            return EXIT_USAGE
        from repro.experiments.engine.remote_cache import RemoteCacheTier
        try:
            remote = RemoteCacheTier(parse_hostport(args.cache_server))
        except ValueError as exc:
            print(f"error: --cache-server: {exc}", file=sys.stderr)
            return EXIT_USAGE
    cache = None
    if args.cache_dir and not args.no_cache:
        cache = ResultCache(directory=args.cache_dir,
                            worker_token=sanitize_worker_token(worker_id),
                            remote=remote)
    try:
        executed = run_worker(
            address, worker_id=worker_id, cache=cache,
            heartbeat_interval_s=args.heartbeat_interval,
            reconnect_attempts=args.reconnect_attempts,
            max_units=args.max_units)
    except WorkerRejected as exc:
        print(f"worker {worker_id} rejected: {exc}", file=sys.stderr)
        return EXIT_REJECTED
    except ConnectionLost as exc:
        print(f"worker {worker_id} lost the coordinator: {exc}",
              file=sys.stderr)
        return EXIT_CONNECTION
    print(f"worker {worker_id} done: {executed} unit(s) executed",
          file=sys.stderr)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
