"""Docstring coverage gate (interrogate-style, stdlib-only).

``python -m repro.tools.docstrings PATH [PATH ...] --fail-under PCT``
walks the given files/packages, counts the public definitions that could
carry a docstring — modules, classes, and functions/methods — and exits
non-zero when the documented fraction falls below the threshold. CI runs
it over :mod:`repro.simcore` and :mod:`repro.experiments.engine` at 100%
so the kernel and engine public APIs stay fully documented.

What counts, chosen to gate the *public API* rather than internals:

- module docstrings, one per file;
- every class whose name does not start with ``_``, at any nesting depth
  inside other classes;
- every function or method whose name does not start with ``_``
  (dunders included only for ``__init__``-free idiom: they are skipped),
  except functions nested inside other functions (implementation
  details, invisible to importers).

``--list-missing`` names each undocumented definition as
``path:line kind name``; the default output is a per-file table plus the
total. The checker is pure AST — nothing is imported — so it is safe on
any file the repo ships.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Union

_Def = Union[ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class Missing:
    """One undocumented definition."""

    path: Path
    line: int
    kind: str  # "module" | "class" | "function"
    name: str


@dataclass
class FileReport:
    """Coverage tally for one source file."""

    path: Path
    total: int = 0
    documented: int = 0
    missing: list[Missing] = field(default_factory=list)

    @property
    def percent(self) -> float:
        """Documented fraction as a percentage (100.0 when empty)."""
        return 100.0 * self.documented / self.total if self.total else 100.0


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_defs(body: list[ast.stmt],
               inside_function: bool) -> Iterator[tuple[_Def, bool]]:
    """Yield ``(definition, countable)`` for every def/class under
    ``body``, tracking whether we are nested inside a function."""
    for node in body:
        if isinstance(node, ast.ClassDef):
            yield node, not inside_function and _is_public(node.name)
            yield from _walk_defs(node.body, inside_function)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, not inside_function and _is_public(node.name)
            yield from _walk_defs(node.body, True)
        elif isinstance(node, (ast.If, ast.Try, ast.With)):
            # Defs behind TYPE_CHECKING guards / availability gates still
            # form part of the API surface.
            for sub in ast.iter_child_nodes(node):
                if isinstance(sub, ast.stmt):
                    yield from _walk_defs([sub], inside_function)


def check_file(path: Path) -> FileReport:
    """Parse ``path`` and tally its docstring coverage."""
    report = FileReport(path)
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except SyntaxError as exc:
        raise SystemExit(f"error: cannot parse {path}: {exc}") from exc
    report.total += 1
    if ast.get_docstring(tree):
        report.documented += 1
    else:
        report.missing.append(Missing(path, 1, "module", path.stem))
    for node, countable in _walk_defs(tree.body, inside_function=False):
        if not countable:
            continue
        report.total += 1
        if ast.get_docstring(node):
            report.documented += 1
        else:
            kind = ("class" if isinstance(node, ast.ClassDef)
                    else "function")
            report.missing.append(
                Missing(path, node.lineno, kind, node.name))
    return report


def collect_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise SystemExit(f"error: not a python file or directory: "
                             f"{path}")
    return sorted(files)


def run(paths: list[Path], fail_under: float, verbose: bool,
        list_missing: bool) -> int:
    """Check coverage over ``paths``; returns the process exit code."""
    files = collect_files(paths)
    if not files:
        print("error: no python files found", file=sys.stderr)
        return 1
    reports = [check_file(path) for path in files]
    total = sum(r.total for r in reports)
    documented = sum(r.documented for r in reports)
    percent = 100.0 * documented / total if total else 100.0

    if verbose:
        width = max(len(str(r.path)) for r in reports)
        for r in reports:
            print(f"  {str(r.path):<{width}}  {r.documented:>3}/{r.total:<3}"
                  f"  {r.percent:6.1f}%")
    failed = percent < fail_under
    if list_missing or failed:
        for r in reports:
            for m in r.missing:
                print(f"  missing: {m.path}:{m.line} {m.kind} {m.name}")
    print(f"docstring coverage: {documented}/{total} = {percent:.1f}% "
          f"(fail-under {fail_under:.1f}%)")
    if failed:
        print(f"error: coverage {percent:.1f}% is below "
              f"{fail_under:.1f}%", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.docstrings",
        description="Docstring coverage checker for public APIs.")
    parser.add_argument("paths", nargs="+", type=Path,
                        help="files or package directories to check")
    parser.add_argument("--fail-under", type=float, default=100.0,
                        metavar="PCT",
                        help="minimum acceptable coverage percentage "
                             "(default 100)")
    parser.add_argument("--verbose", "-v", action="store_true",
                        help="print a per-file coverage table")
    parser.add_argument("--list-missing", action="store_true",
                        help="name every undocumented definition (always "
                             "shown on failure)")
    args = parser.parse_args(argv)
    if not 0.0 <= args.fail_under <= 100.0:
        parser.error("--fail-under must be between 0 and 100")
    return run(args.paths, args.fail_under, args.verbose,
               args.list_missing)


if __name__ == "__main__":
    sys.exit(main())
