"""Command-line utilities built on the library.

- ``python -m repro.tools.trace_view`` — render a synthetic Millisampler
  capture as Figure 1-style terminal panels.
- ``python -m repro.tools.mode_sweep`` — sweep incast degree and print the
  analytic and simulated operating mode per flow count.
"""
