"""Command-line utilities built on the library.

- ``python -m repro.tools.trace_view`` — render a synthetic Millisampler
  capture as Figure 1-style terminal panels.
- ``python -m repro.tools.mode_sweep`` — sweep incast degree and print the
  analytic and simulated operating mode per flow count.
- ``python -m repro.tools.telemetry_view`` — render the in-sim telemetry
  captured by ``--telemetry`` runs (see :mod:`repro.telemetry`).
- ``python -m repro.tools.golden`` — regenerate the golden test fixtures.
- ``python -m repro.tools.bench`` — pinned-seed performance benchmarks of
  the kernel hot path and the figure experiments (writes
  ``BENCH_kernel.json`` / ``BENCH_experiments.json``).
- ``python -m repro.tools.docstrings`` — docstring coverage gate for the
  public API (interrogate-style ``--fail-under``).
- ``python -m repro.tools.worker`` — distributed campaign worker: connects
  to a ``--backend distributed`` coordinator, pulls work units and streams
  back checksummed result payloads (see
  :mod:`repro.experiments.engine.distributed`).
"""
