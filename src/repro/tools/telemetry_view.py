"""Inspect telemetry captured by ``--telemetry`` runs.

Reads a ``run_report.json`` written by
``python -m repro.experiments ... --telemetry --json-dir DIR`` and renders
the Millisampler-style series it contains::

    python -m repro.tools.telemetry_view results/run_report.json
    python -m repro.tools.telemetry_view results/run_report.json \\
        --unit fig5/panel:mode1_healthy --signal ingress_bytes
    python -m repro.tools.telemetry_view results/run_report.json \\
        --dump-json out.json
    python -m repro.tools.telemetry_view results/run_report.json \\
        --dump-csv out.csv

Default output is an ASCII timeline per unit: one sparkline per host
signal, a line plot of the bottleneck queue's per-interval peak, and the
flow lifecycle event tallies.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from pathlib import Path
from typing import Optional

from repro.analysis.ascii_plot import line_plot, sparkline

HOST_SIGNALS = ("ingress_bytes", "egress_bytes", "flow_count",
                "marked_bytes", "retransmit_bytes")


def load_telemetry(path: Path) -> dict[str, dict]:
    """The ``telemetry`` section of a run report (unit label -> capture)."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    telemetry = document.get("telemetry")
    if not telemetry:
        raise SystemExit(
            f"{path}: no telemetry section — rerun the experiment with "
            f"--telemetry --json-dir")
    return telemetry


def render_unit(label: str, capture: dict) -> str:
    """ASCII timeline of one unit's capture."""
    interval_ms = capture["interval_ns"] / 1e6
    n = capture["n_intervals"]
    lines = [f"== {label} ==",
             f"interval {interval_ms:g} ms x {n} intervals"]
    for host, series in capture.get("hosts", {}).items():
        lines.append(f"-- host {host} (addr {series['address']}) --")
        for signal in HOST_SIGNALS:
            values = series.get(signal, [])
            total = series.get(f"total_{signal}", sum(values))
            spark = sparkline(values) or "(empty)"
            lines.append(f"  {signal:17s} total={total:<12d} {spark}")
    for queue, series in capture.get("queues", {}).items():
        peaks = series.get("peak_packets", [])
        cap = series.get("capacity_packets")
        times_ms = [i * interval_ms for i in range(len(peaks))]
        lines.append(line_plot(
            times_ms, [float(v) for v in peaks],
            title=f"-- queue {queue}: per-interval peak occupancy --",
            x_label="t (ms)", y_label="peak (packets)",
            y_max=float(cap) if cap else None))
    counts = capture.get("event_counts", {})
    if counts:
        tally = ", ".join(f"{kind}={counts[kind]}"
                          for kind in sorted(counts))
        lines.append(f"flow events: {tally} "
                     f"(total {capture.get('n_events', 0)}, "
                     f"dropped {capture.get('events_dropped', 0)})")
    return "\n".join(lines)


def dump_csv(telemetry: dict[str, dict], path: Path) -> int:
    """Write every host series as long-form CSV rows
    ``unit,host,signal,interval,value``; returns the row count."""
    rows = 0
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["unit", "host", "signal", "interval", "value"])
        for label, capture in telemetry.items():
            for host, series in capture.get("hosts", {}).items():
                for signal in HOST_SIGNALS:
                    for idx, value in enumerate(series.get(signal, [])):
                        writer.writerow([label, host, signal, idx, value])
                        rows += 1
            for queue, series in capture.get("queues", {}).items():
                for idx, value in enumerate(series.get("peak_packets", [])):
                    writer.writerow([label, queue, "peak_packets", idx,
                                     value])
                    rows += 1
    return rows


def build_parser() -> argparse.ArgumentParser:
    """CLI argument parser (exposed for the docs generator and tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-telemetry-view",
        description="Render Millisampler-style telemetry from a "
                    "run_report.json produced with --telemetry")
    parser.add_argument("report", type=str,
                        help="path to run_report.json")
    parser.add_argument("--unit", type=str, default=None,
                        help="only this unit (e.g. "
                             "fig5/panel:mode1_healthy)")
    parser.add_argument("--signal", type=str, default=None,
                        choices=HOST_SIGNALS,
                        help="plot one host signal as a full line plot "
                             "instead of the sparkline summary")
    parser.add_argument("--dump-json", type=str, default=None,
                        help="write the selected telemetry as JSON")
    parser.add_argument("--dump-csv", type=str, default=None,
                        help="write host/queue series as long-form CSV")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry = load_telemetry(Path(args.report))
    if args.unit is not None:
        if args.unit not in telemetry:
            available = ", ".join(sorted(telemetry))
            raise SystemExit(f"unit {args.unit!r} not in report; "
                             f"available: {available}")
        telemetry = {args.unit: telemetry[args.unit]}

    if args.dump_json is not None:
        with open(args.dump_json, "w", encoding="utf-8") as handle:
            json.dump(telemetry, handle, indent=2)
        print(f"[wrote {args.dump_json}]")
    if args.dump_csv is not None:
        rows = dump_csv(telemetry, Path(args.dump_csv))
        print(f"[wrote {args.dump_csv}: {rows} rows]")
    if args.dump_json is not None or args.dump_csv is not None:
        return 0

    blocks = []
    for label, capture in telemetry.items():
        if args.signal is not None:
            interval_ms = capture["interval_ns"] / 1e6
            for host, series in capture.get("hosts", {}).items():
                values = [float(v) for v in series.get(args.signal, [])]
                times_ms = [i * interval_ms for i in range(len(values))]
                blocks.append(line_plot(
                    times_ms, values,
                    title=f"{label} / {host}: {args.signal}",
                    x_label="t (ms)", y_label=args.signal))
        else:
            blocks.append(render_unit(label, capture))
    print("\n\n".join(blocks))
    return 0


if __name__ == "__main__":
    sys.exit(main())
