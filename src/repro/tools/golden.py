"""Golden-result fixtures for the regression suite.

Each golden case runs one experiment (or one cheap ablation) at a small
fixed scale and seed, flattens the JSON-exportable ``data`` of its
:class:`~repro.experiments.result.ExperimentResult` into scalar leaves,
and stores them as a committed fixture. ``tests/test_golden_results.py``
recomputes the cases and compares leaf-by-leaf with tolerances, so a
behaviour change in any layer (kernel, TCP, workloads, analysis) surfaces
as a named metric diff instead of a silent drift.

Regenerate after an *intentional* change with::

    PYTHONPATH=src python -m repro.tools.golden

and commit the updated ``tests/golden/*.json``.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Callable

from repro.analysis.export import result_to_dict
from repro.experiments.result import ExperimentResult

#: All golden cases share one small scale and one fixed seed.
SCALE = 0.05
SEED = 3

#: Experiments cheap enough to run end-to-end in the suite. The full
#: ``ablations`` experiment takes minutes even at this scale, so it is
#: covered by representative sub-ablations below instead.
GOLDEN_EXPERIMENTS = ["table1", "fig1", "fig2", "fig3", "fig4", "fig5",
                      "fig6", "fig7", "crossval"]

#: Cheap, layer-diverse ablation representatives (fleet predictor, TCP
#: idle-restart, receiver delayed ACKs).
GOLDEN_ABLATIONS = ["predictability", "idle", "delayed_ack"]

#: Experiments additionally pinned through the *engine* path (plan →
#: pool fan-out → merge, ``jobs=2``, cache off). The classic ``run()``
#: cases above cannot see an engine regression — a scheduling, retry or
#: merge bug that perturbs payload assembly only shows up here. These are
#: also the fault-free anchors the chaos suite's recovered runs must
#: reproduce byte for byte.
GOLDEN_ENGINE_EXPERIMENTS = ["fig5", "fig6"]

#: Comparison tolerances for numeric leaves.
REL_TOL = 1e-6
ABS_TOL = 1e-9


def golden_dir() -> Path:
    """The committed fixture directory (``tests/golden``)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def scalar_leaves(value: Any, prefix: str = "data") -> dict[str, Any]:
    """Flatten JSON-compatible data into ``{dotted.path: scalar}`` leaves."""
    out: dict[str, Any] = {}
    if isinstance(value, dict):
        for key in value:
            out.update(scalar_leaves(value[key], f"{prefix}.{key}"))
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            out.update(scalar_leaves(item, f"{prefix}[{index}]"))
    else:
        out[prefix] = value
    return out


def golden_payload(result: ExperimentResult) -> dict:
    """The stored form of one case: scale/seed plus metric leaves."""
    return {
        "scale": SCALE,
        "seed": SEED,
        "n_sections": len(result.sections),
        "metrics": scalar_leaves(result_to_dict(result)["data"]),
    }


def _run_through_engine(name: str) -> ExperimentResult:
    """One experiment through the parallel engine path (no cache)."""
    from repro.experiments.engine import run_experiment

    result, _report = run_experiment(name, scale=SCALE, seed=SEED, jobs=2)
    return result


def golden_sweep_specs() -> dict:
    """Case name -> tiny declarative sweep spec.

    Small two-point grids over both leaf-spine scenarios, pinned through
    the sweep compile → engine → FCT-merge path. The sweep golden tests
    additionally assert these are byte-identical serial vs ``jobs=4`` vs
    SIGTERM-interrupted-and-resumed (``tests/test_sweep_golden.py``).
    """
    from repro import units
    from repro.experiments.sweep import SweepAxis, SweepSpec

    horizon = units.sec(1.0)
    return {
        "sweep_ecn_k": SweepSpec(
            name="golden-ecn-k", scenario="leafspine_mix",
            axes=(SweepAxis("ecn_threshold_packets", (8, 65)),),
            fixed={"n_racks": 2, "hosts_per_rack": 4, "n_elephants": 1,
                   "n_mice": 6, "max_sim_time_ns": horizon},
            description="golden: tiny elephant/mice ECN-K grid"),
        "sweep_incast": SweepSpec(
            name="golden-cross-rack", scenario="leafspine_incast",
            axes=(SweepAxis("n_senders", (4, 8)),),
            fixed={"n_racks": 2, "hosts_per_rack": 4,
                   "max_sim_time_ns": horizon},
            description="golden: tiny cross-rack incast under ECMP"),
    }


def golden_verdict_grid():
    """Tiny mitigation-verdict grid pinned through the engine path.

    Three schemes (the baseline plus one receiver-side and one
    sender-signal mitigation), two incast degrees straddling the
    degenerate point, one burst length, plus the elephant/mice mix — 9
    units, enough to exercise every verdict table while staying cheap.
    The execution-path identity tests (``tests/test_verdict.py``)
    additionally assert this grid is byte-identical serial vs ``jobs=4``
    vs cached vs SIGTERM-interrupted-and-resumed.
    """
    from repro.experiments.verdict import VerdictGrid

    return VerdictGrid(schemes=("dctcp", "ictcp", "pulser"),
                       flow_counts=(40, 150), burst_ms=(2.0,))


def _run_verdict_case() -> ExperimentResult:
    """The golden verdict campaign (engine path, ``jobs=2``, no cache)."""
    from repro.experiments.engine import run_experiments
    from repro.experiments.verdict import make_experiment

    adapter = make_experiment(golden_verdict_grid())
    results, _report = run_experiments(
        ["verdict"], scale=SCALE, seed=SEED, jobs=2,
        extra_modules={"verdict": adapter})
    return results["verdict"]


def _run_sweep_case(case: str) -> ExperimentResult:
    """One golden sweep through the engine path (``jobs=2``, no cache)."""
    from repro.experiments.sweep import run_sweep

    result, _report = run_sweep(golden_sweep_specs()[case],
                                scale=SCALE, seed=SEED, jobs=2)
    return result


def golden_cases() -> dict[str, Callable[[], ExperimentResult]]:
    """Case name -> thunk computing its ExperimentResult."""
    from repro.experiments.ablations import ALL_ABLATIONS
    from repro.experiments.engine import EXPERIMENT_MODULES

    cases: dict[str, Callable[[], ExperimentResult]] = {}
    for name in GOLDEN_EXPERIMENTS:
        module = EXPERIMENT_MODULES[name]
        cases[name] = (lambda m=module: m.run(scale=SCALE, seed=SEED))
    for name in GOLDEN_ABLATIONS:
        runner = ALL_ABLATIONS[name]
        cases[f"ablation_{name}"] = (
            lambda r=runner: r(scale=SCALE, seed=SEED))
    for name in GOLDEN_ENGINE_EXPERIMENTS:
        cases[f"engine_{name}"] = (
            lambda n=name: _run_through_engine(n))
    for name in golden_sweep_specs():
        cases[name] = (lambda n=name: _run_sweep_case(n))
    cases["verdict"] = _run_verdict_case
    return cases


def compare_payloads(expected: dict, actual: dict,
                     rel_tol: float = REL_TOL,
                     abs_tol: float = ABS_TOL) -> list[str]:
    """Tolerance-based diff of two golden payloads; returns mismatch
    descriptions (empty = match)."""
    problems: list[str] = []
    if expected.get("n_sections") != actual.get("n_sections"):
        problems.append(f"n_sections: expected {expected.get('n_sections')}"
                        f", got {actual.get('n_sections')}")
    want: dict = expected["metrics"]
    have: dict = actual["metrics"]
    for path in want:
        if path not in have:
            problems.append(f"missing metric {path}")
            continue
        a, b = want[path], have[path]
        numeric = (isinstance(a, (int, float))
                   and isinstance(b, (int, float))
                   and not isinstance(a, bool) and not isinstance(b, bool))
        if numeric:
            if not math.isclose(float(a), float(b), rel_tol=rel_tol,
                                abs_tol=abs_tol):
                problems.append(f"{path}: expected {a!r}, got {b!r}")
        elif a != b:
            problems.append(f"{path}: expected {a!r}, got {b!r}")
    for path in have:
        if path not in want:
            problems.append(f"unexpected metric {path}")
    return problems


def main(argv: list[str] | None = None) -> int:
    """Regenerate (default) or ``--check`` the committed fixtures."""
    parser = argparse.ArgumentParser(
        prog="repro-golden",
        description="Regenerate or verify the golden-result fixtures")
    parser.add_argument("--dir", type=str, default=None,
                        help="fixture directory (default: tests/golden)")
    parser.add_argument("--check", action="store_true",
                        help="verify fixtures instead of rewriting them")
    parser.add_argument("--case", action="append", default=None,
                        help="restrict to specific case name(s)")
    args = parser.parse_args(argv)

    directory = Path(args.dir) if args.dir else golden_dir()
    directory.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name, thunk in golden_cases().items():
        if args.case and name not in args.case:
            continue
        payload = golden_payload(thunk())
        path = directory / f"{name}.json"
        if args.check:
            expected = json.loads(path.read_text(encoding="utf-8"))
            problems = compare_payloads(expected, payload)
            status = "ok" if not problems else f"FAIL ({len(problems)})"
            print(f"{name:24s} {status}")
            for problem in problems[:10]:
                print(f"    {problem}")
            failures += bool(problems)
        else:
            path.write_text(json.dumps(payload, indent=2, sort_keys=True),
                            encoding="utf-8")
            print(f"wrote {path} ({len(payload['metrics'])} metrics)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
