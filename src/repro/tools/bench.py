"""Reproducible performance benchmarks for the simulation stack.

``python -m repro.tools.bench`` runs two suites and writes one JSON
document per suite at the repository root (or ``--out-dir``):

- **kernel** (``BENCH_kernel.json``) — pinned-seed micro-benchmarks of the
  discrete-event hot path: pure event churn, the TCP-style timer
  rearm/cancel pattern, a cancellation-heavy queue workload, and the
  Figure 6 incast scenario at low and high flow counts (the high-N case is
  the headline number ROADMAP's "fast as the hardware allows" goal is
  tracked by).
- **experiments** (``BENCH_experiments.json``) — end-to-end runs of the
  simulation-backed figure modules (fig5/fig6/fig7) at a configurable
  scale, the same scenarios ``benchmarks/bench_fig*.py`` exercises under
  pytest.

Every scenario runs ``--warmup`` throwaway iterations then ``--repeat``
measured ones; the reported events/sec uses the best (minimum) wall time,
which is the standard noise-robust statistic for micro-benchmarks. Event
counts are produced by deterministic pinned-seed simulations and must be
identical across repeats — the harness refuses to report a scenario whose
event count wobbles, because that would mean the simulation itself (not
just the clock) changed between runs.

Comparing runs across machines by raw events/sec is meaningless, so each
run also records a *calibration* rate (the pure event-churn micro-bench)
and a per-scenario ``score`` = events/sec divided by the calibration
rate. Scores are machine-speed-normalized to first order and are what the
regression gate compares: a scenario regresses when its score drops more
than ``--max-regression`` (default 20%) below the baseline's. The
baseline is the previous run's JSON (``--baseline PATH``, defaulting to
the existing output file), and the previous results are embedded in the
new document under ``"baseline"`` so a single file tells the whole
before/after story.

Exit status: 0 on success, 2 when the regression gate trips (suppress
with ``--no-fail``), 1 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro import units
from repro.simcore import kernel
from repro.simcore.event import EventQueue
from repro.simcore.kernel import Simulator, Timer

SCHEMA_VERSION = 1

KERNEL_FILE = "BENCH_kernel.json"
EXPERIMENTS_FILE = "BENCH_experiments.json"

#: Scenario whose events/sec serves as the machine-speed calibration rate.
CALIBRATION_SCENARIO = "event_churn"


# --------------------------------------------------------------------------
# Kernel micro-benchmarks. Each returns the number of "events" it
# performed; all are deterministic for a fixed spec.
# --------------------------------------------------------------------------

def _bench_event_churn(n_events: int = 200_000, n_chains: int = 64) -> int:
    """Pure event-loop throughput: ``n_chains`` self-rescheduling
    callbacks, no cancellation, no network stack."""
    sim = Simulator()

    def tick() -> None:
        sim.schedule(1_000, tick)

    for i in range(n_chains):
        sim.schedule(i + 1, tick)
    sim.run(max_events=n_events)
    return sim.events_processed


def _bench_timer_rearm(n_iterations: int = 50_000) -> int:
    """The TCP RTO pattern: every processed event rearms a long timer
    (cancel + reschedule), so the heap fills with dead entries."""
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    remaining = n_iterations

    def tick() -> None:
        nonlocal remaining
        timer.start(1_000_000)  # rearm: cancels the previous expiry
        remaining -= 1
        if remaining > 0:
            sim.schedule(100, tick)

    sim.schedule(0, tick)
    sim.run()
    return sim.events_processed


def _bench_cancel_churn(rounds: int = 200, batch: int = 1_000) -> int:
    """Queue-level push/cancel/pop churn: 90% of each batch is cancelled
    before draining, the access pattern that stresses lazy deletion and
    heap compaction. The reported count is total queue operations."""
    q = EventQueue()
    ops = 0
    t = 0
    for _ in range(rounds):
        handles = []
        for _ in range(batch):
            t += 1
            handles.append(q.push(t, int))
        ops += batch
        for handle in handles[: (batch * 9) // 10]:
            q.cancel(handle)
        ops += (batch * 9) // 10
        while q.pop() is not None:
            ops += 1
    return ops


def _bench_fig6_incast(n_flows: int) -> int:
    """The Figure 6 scenario (2 ms bursts) at one incast degree — the
    full packet-level stack: TCP, queues, links, probes."""
    from repro.experiments.environment import (IncastSimConfig,
                                               run_incast_sim)
    before = kernel.total_events_processed()
    cfg = IncastSimConfig(n_flows=n_flows,
                          burst_duration_ns=units.msec(2.0),
                          n_bursts=3, seed=0,
                          max_sim_time_ns=units.sec(60.0))
    run_incast_sim(cfg)
    return kernel.total_events_processed() - before


def _bench_mix_hybrid(n_mice: int) -> int:
    """The leaf-spine elephant/mice scenario on the ``hybrid`` backend:
    fluid steady-state window plus a packet-core mice incast. Counts only
    the packet-window events (the fluid window processes none), so the
    score also tracks how much work the substrate split avoids."""
    from repro.experiments.scenarios import (ElephantMiceGridConfig,
                                             run_elephant_mice)
    before = kernel.total_events_processed()
    run_elephant_mice(ElephantMiceGridConfig(n_mice=n_mice, seed=0,
                                             backend="hybrid"))
    return kernel.total_events_processed() - before


def kernel_scenarios() -> dict[str, tuple[dict, Callable[[], int]]]:
    """The kernel suite: ``name -> (spec, callable)``.

    Specs are embedded in the JSON and must match between two runs for
    the regression gate to compare them.
    """
    return {
        "event_churn": ({"n_events": 200_000, "n_chains": 64},
                        lambda: _bench_event_churn(200_000, 64)),
        "timer_rearm": ({"n_iterations": 50_000},
                        lambda: _bench_timer_rearm(50_000)),
        "cancel_churn": ({"rounds": 200, "batch": 1_000,
                          "counts": "queue operations"},
                         lambda: _bench_cancel_churn(200, 1_000)),
        "fig6_incast_100": ({"n_flows": 100, "n_bursts": 3, "seed": 0,
                             "burst_ms": 2.0},
                            lambda: _bench_fig6_incast(100)),
        "fig6_incast_500": ({"n_flows": 500, "n_bursts": 3, "seed": 0,
                             "burst_ms": 2.0},
                            lambda: _bench_fig6_incast(500)),
        "leafspine_mix_hybrid": ({"n_mice": 192, "seed": 0,
                                  "backend": "hybrid"},
                                 lambda: _bench_mix_hybrid(192)),
    }


def experiment_scenarios(scale: float
                         ) -> dict[str, tuple[dict, Callable[[], int]]]:
    """The experiments suite: full figure modules at ``scale``."""
    # The engine package must be imported before any figure module to
    # resolve the fig5 <-> engine module cycle in a consistent order.
    import repro.experiments.engine  # noqa: F401
    from repro.experiments import fig5, fig6, fig7

    def run_module(module) -> Callable[[], int]:
        def runner() -> int:
            before = kernel.total_events_processed()
            module.run(scale=scale, seed=0)
            return kernel.total_events_processed() - before
        return runner

    spec = {"scale": scale, "seed": 0}
    return {
        "fig5": (dict(spec), run_module(fig5)),
        "fig6": (dict(spec), run_module(fig6)),
        "fig7": (dict(spec), run_module(fig7)),
    }


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------

class BenchError(RuntimeError):
    """A scenario misbehaved (nondeterministic event count)."""


def measure(fn: Callable[[], int], repeat: int,
            warmup: int) -> tuple[int, list[float]]:
    """Run ``fn`` ``warmup + repeat`` times; return its (stable) event
    count and the measured wall times.

    Raises :class:`BenchError` if the event count differs between any two
    runs — pinned-seed scenarios must be deterministic.
    """
    counts: list[int] = []
    walls: list[float] = []
    for i in range(warmup + repeat):
        t0 = time.perf_counter()
        events = fn()
        wall = time.perf_counter() - t0
        counts.append(events)
        if i >= warmup:
            walls.append(wall)
    if len(set(counts)) != 1:
        raise BenchError(
            f"nondeterministic event count across runs: {counts}")
    return counts[0], walls


def run_suite(scenarios: dict[str, tuple[dict, Callable[[], int]]],
              repeat: int, warmup: int,
              only: Optional[list[str]] = None,
              verbose: bool = True) -> dict[str, dict]:
    """Measure every scenario (filtered by ``only`` substrings); returns
    the ``results`` mapping for the JSON document."""
    results: dict[str, dict] = {}
    for name, (spec, fn) in scenarios.items():
        if only and not any(sub in name for sub in only):
            continue
        events, walls = measure(fn, repeat=repeat, warmup=warmup)
        best = min(walls)
        results[name] = {
            "spec": spec,
            "events": events,
            "wall_s": [round(w, 6) for w in walls],
            "best_wall_s": round(best, 6),
            "events_per_sec": round(events / best, 1),
        }
        if verbose:
            print(f"  {name:<18} {events:>9,} events  "
                  f"best {best * 1e3:8.1f} ms  "
                  f"{events / best:>12,.0f} events/sec")
    return results


def add_scores(results: dict[str, dict],
               calibration_eps: Optional[float]) -> None:
    """Attach machine-normalized ``score`` fields in place."""
    if not calibration_eps:
        return
    for entry in results.values():
        entry["score"] = round(entry["events_per_sec"] / calibration_eps, 6)


# --------------------------------------------------------------------------
# Baseline comparison
# --------------------------------------------------------------------------

def load_baseline(path: Path) -> Optional[dict]:
    """Read a previous run's document; ``None`` when absent/unreadable."""
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def compare(results: dict[str, dict], baseline: dict,
            max_regression: float) -> tuple[dict[str, dict], list[str]]:
    """Diff ``results`` against a baseline document.

    Returns ``(comparison, regressions)`` where ``comparison`` maps each
    shared scenario (with a matching spec) to speedup/score-ratio fields
    and ``regressions`` lists scenarios whose normalized score (falling
    back to raw events/sec when either run lacks calibration) dropped by
    more than ``max_regression``.
    """
    base_results = baseline.get("results", {})
    comparison: dict[str, dict] = {}
    regressions: list[str] = []
    for name, entry in results.items():
        base = base_results.get(name)
        if base is None:
            continue
        if base.get("spec") != entry.get("spec"):
            comparison[name] = {"skipped": "spec changed"}
            continue
        speedup = entry["events_per_sec"] / base["events_per_sec"]
        row: dict[str, Any] = {
            "baseline_events_per_sec": base["events_per_sec"],
            "events_per_sec": entry["events_per_sec"],
            "speedup": round(speedup, 3),
        }
        if "score" in entry and "score" in base and base["score"]:
            ratio = entry["score"] / base["score"]
            row["baseline_score"] = base["score"]
            row["score"] = entry["score"]
            row["score_ratio"] = round(ratio, 3)
        else:
            ratio = speedup
        row["regressed"] = bool(ratio < 1.0 - max_regression)
        if row["regressed"]:
            regressions.append(name)
        comparison[name] = row
    return comparison, regressions


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------

def _document(kind: str, params: dict, results: dict[str, dict],
              calibration_eps: Optional[float],
              baseline_doc: Optional[dict], baseline_source: Optional[str],
              comparison: Optional[dict]) -> dict:
    doc: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "kind": kind,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "params": params,
        "calibration_events_per_sec": calibration_eps,
        "results": results,
    }
    if baseline_doc is not None:
        doc["baseline"] = {
            "source": baseline_source,
            "python": baseline_doc.get("python"),
            "platform": baseline_doc.get("platform"),
            "params": baseline_doc.get("params"),
            "calibration_events_per_sec":
                baseline_doc.get("calibration_events_per_sec"),
            "results": baseline_doc.get("results", {}),
        }
        doc["comparison"] = comparison or {}
    return doc


def _print_comparison(comparison: dict[str, dict]) -> None:
    for name, row in comparison.items():
        if "skipped" in row:
            print(f"  {name:<18} (skipped: {row['skipped']})")
            continue
        flag = "  REGRESSION" if row["regressed"] else ""
        extra = (f"  score x{row['score_ratio']:.2f}"
                 if "score_ratio" in row else "")
        print(f"  {name:<18} {row['speedup']:5.2f}x events/sec vs "
              f"baseline{extra}{flag}")


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench",
        description="Pinned-seed performance benchmarks for the "
                    "simulation stack.")
    parser.add_argument("--kernel", action="store_true",
                        help="run the kernel micro-benchmark suite")
    parser.add_argument("--experiments", action="store_true",
                        help="run the end-to-end experiment suite")
    parser.add_argument("--quick", action="store_true",
                        help="CI mode: kernel suite only, repeat=2, "
                             "warmup=0 (unless overridden)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="measured iterations per scenario "
                             "(default 3, quick 2)")
    parser.add_argument("--warmup", type=int, default=None,
                        help="throwaway iterations per scenario "
                             "(default 1, quick 0)")
    parser.add_argument("--scale", type=float, default=0.35,
                        help="scale factor for the experiment suite "
                             "(default 0.35)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="SUBSTR",
                        help="run only scenarios whose name contains "
                             "SUBSTR (repeatable)")
    parser.add_argument("--out-dir", type=Path, default=Path("."),
                        help="directory for BENCH_*.json (default: cwd; "
                             "run from the repo root)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="previous run to diff against (default: the "
                             "existing output file, if any)")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="fail when a scenario's normalized score "
                             "drops by more than this fraction "
                             "(default 0.20)")
    parser.add_argument("--no-fail", action="store_true",
                        help="report regressions but exit 0")
    args = parser.parse_args(argv)

    suites = []
    if args.kernel or args.quick or not args.experiments:
        suites.append("kernel")
    if args.experiments or not (args.kernel or args.quick):
        suites.append("experiments")
    repeat = args.repeat if args.repeat is not None else (
        2 if args.quick else 3)
    warmup = args.warmup if args.warmup is not None else (
        0 if args.quick else 1)
    if repeat <= 0:
        parser.error("--repeat must be positive")
    if warmup < 0:
        parser.error("--warmup must be >= 0")

    args.out_dir.mkdir(parents=True, exist_ok=True)
    exit_code = 0
    for kind in suites:
        out_path = args.out_dir / (
            KERNEL_FILE if kind == "kernel" else EXPERIMENTS_FILE)
        baseline_path = args.baseline if args.baseline else out_path
        baseline_doc = load_baseline(baseline_path)

        print(f"[{kind}] repeat={repeat} warmup={warmup}")
        if kind == "kernel":
            scenarios = kernel_scenarios()
            params = {"repeat": repeat, "warmup": warmup}
        else:
            scenarios = experiment_scenarios(args.scale)
            params = {"repeat": repeat, "warmup": warmup,
                      "scale": args.scale}
        try:
            results = run_suite(scenarios, repeat=repeat, warmup=warmup,
                                only=args.only)
        except BenchError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not results:
            print("  (no scenarios selected)")
            continue

        # Calibration: prefer an event_churn measured this run; otherwise
        # measure a fresh one (cheap) so scores always exist.
        if CALIBRATION_SCENARIO in results:
            calibration_eps = results[CALIBRATION_SCENARIO][
                "events_per_sec"]
        else:
            spec, fn = kernel_scenarios()[CALIBRATION_SCENARIO]
            events, walls = measure(fn, repeat=1, warmup=0)
            calibration_eps = round(events / min(walls), 1)
        add_scores(results, calibration_eps)

        comparison = None
        if baseline_doc is not None:
            comparison, regressions = compare(
                results, baseline_doc, args.max_regression)
            print(f"  -- vs baseline "
                  f"({baseline_path}):")
            _print_comparison(comparison)
            if regressions and not args.no_fail:
                print(f"error: events/sec regression beyond "
                      f"{args.max_regression:.0%} in: "
                      f"{', '.join(regressions)}", file=sys.stderr)
                exit_code = 2

        doc = _document(kind, params, results, calibration_eps,
                        baseline_doc,
                        str(baseline_path) if baseline_doc else None,
                        comparison)
        out_path.write_text(json.dumps(doc, indent=2, sort_keys=True)
                            + "\n", encoding="utf-8")
        print(f"  wrote {out_path}")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
