"""Render a synthetic Millisampler capture as terminal panels.

The Figure 1 experience at the command line: generate one host capture for
any of the five services and print the four panels (ingress rate, active
flows, ECN-marked rate, retransmitted rate) as sparklines plus a burst
table.

Usage::

    python -m repro.tools.trace_view --service aggregator --seed 7
    python -m repro.tools.trace_view --service video --duration-ms 500
"""

from __future__ import annotations

import argparse

from repro.analysis.ascii_plot import sparkline
from repro.analysis.tables import format_table
from repro.core.bursts import burst_frequency_hz, detect_bursts
from repro.core.incast import is_incast
from repro.measurement.records import HostTrace, TraceMeta
from repro.netsim.fluid import FluidConfig
from repro.simcore.random import RngHub
from repro.workloads.services import SERVICE_PROFILES, generate_host_trace


def render_trace(trace: HostTrace, width: int = 72) -> str:
    """The four Figure 1 panels as labelled sparklines plus a burst table."""
    bursts = detect_bursts(trace)
    lines = [
        f"{trace.meta.service} host{trace.meta.host_id}: "
        f"{trace.n_intervals} ms @ {trace.line_rate_bps / 1e9:g} Gbps, "
        f"utilization {trace.mean_utilization():.1%}, "
        f"{burst_frequency_hz(trace, bursts):.0f} bursts/s",
        "",
        "(a) ingress Gbps      " + sparkline(trace.ingress_rate_gbps(),
                                             width),
        "(b) active flows      " + sparkline(trace.active_flows, width),
        "(c) ECN-marked Gbps   " + sparkline(trace.marked_rate_gbps(),
                                             width),
        "(d) retransmit Gbps   " + sparkline(trace.retransmit_rate_gbps(),
                                             width),
        "",
    ]
    rows = []
    for burst in bursts[:25]:
        rows.append([
            f"{burst.start}-{burst.end}",
            round(burst.duration_ms, 1),
            burst.max_active_flows,
            "yes" if is_incast(burst) else "no",
            f"{burst.marked_fraction:.0%}",
            f"{burst.retransmit_fraction_of_line_rate:.1%}",
            f"{burst.peak_queue_frac:.0%}",
        ])
    suffix = "" if len(bursts) <= 25 else f" (first 25 of {len(bursts)})"
    lines.append(format_table(
        ["span (ms)", "dur", "flows", "incast", "marked", "retx",
         "peak queue"],
        rows, title=f"Bursts{suffix}"))
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.trace_view",
        description="Render a synthetic Millisampler capture (Figure 1 "
                    "style) in the terminal")
    parser.add_argument("--service", choices=sorted(SERVICE_PROFILES),
                        default="aggregator")
    parser.add_argument("--host", type=int, default=0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration-ms", type=int, default=2000)
    parser.add_argument("--width", type=int, default=72)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    rng = RngHub(args.seed).fresh(f"{args.service}/host{args.host}")
    trace = generate_host_trace(
        SERVICE_PROFILES[args.service],
        TraceMeta(service=args.service, host_id=args.host), rng,
        duration_ms=args.duration_ms, fluid_config=FluidConfig())
    print(render_trace(trace, width=args.width))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
