"""Sweep incast degree and print analytic vs simulated operating modes.

Usage::

    python -m repro.tools.mode_sweep --flows 50 100 200 500 1000
    python -m repro.tools.mode_sweep --shared-buffer 2000000 --scale 0.3
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import units
from repro.analysis.tables import format_table
from repro.experiments.environment import IncastSimConfig, run_incast_sim
from repro.netsim.topology import DumbbellConfig


def build_parser() -> argparse.ArgumentParser:
    """CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.mode_sweep",
        description="Sweep incast degree; report DCTCP operating modes")
    parser.add_argument("--flows", type=int, nargs="+",
                        default=[50, 100, 200, 500, 1000])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="burst-duration scale (1.0 = 15 ms)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--shared-buffer", type=int, default=None,
                        help="shared switch buffer bytes (default: private "
                             "1333-packet queues)")
    parser.add_argument("--cca", default="dctcp",
                        choices=["dctcp", "reno", "swiftlike"])
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    burst_ns = max(units.msec(2.0), int(units.msec(15.0) * args.scale))
    n_bursts = max(3, int(round(11 * args.scale)))
    rows = []
    for n_flows in args.flows:
        config = IncastSimConfig(
            n_flows=n_flows,
            burst_duration_ns=burst_ns,
            n_bursts=n_bursts,
            seed=args.seed,
            cca=args.cca,
            dumbbell=DumbbellConfig(
                shared_buffer_bytes=args.shared_buffer),
            max_sim_time_ns=units.sec(120.0),
        )
        model = config.mode_model()
        result = run_incast_sim(config)
        finite = result.aligned_queue_packets[
            np.isfinite(result.aligned_queue_packets)]
        rows.append([
            n_flows,
            model.predict(n_flows).name,
            result.mode.name,
            round(result.mean_bct_ms, 2),
            round(result.bct_inflation, 1),
            round(float(finite.max()), 0) if finite.size else 0,
            result.steady_drops,
            result.steady_rtos,
        ])
        print(f"[{n_flows} flows done]")
    model = IncastSimConfig(n_flows=args.flows[0]).mode_model()
    print()
    print(format_table(
        ["flows", "predicted", "observed", "BCT (ms)", "BCT/optimal",
         "peak queue", "drops", "RTOs"],
        rows,
        title=f"Operating-mode sweep ({args.cca}, "
              f"{units.ns_to_ms(burst_ns):g} ms bursts; K* = "
              f"{model.degenerate_point}, overflow at "
              f"{model.overflow_point})"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
