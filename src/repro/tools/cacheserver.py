"""Shared result-cache server: sealed blobs over plain HTTP.

``python -m repro.tools.cacheserver --listen HOST:PORT`` turns one
machine into the shared cache tier for a worker fleet: campaigns started
with ``--cache-server HOST:PORT`` read through it on local misses and
write finished units behind to it, so a unit any fleet member already
computed is never recomputed by another — without a shared filesystem.

The wire contract is deliberately tiny and *identical to the disk
contract*: a GET or PUT body is exactly one sealed checksum-footer blob
(:func:`repro.experiments.engine.cache.seal_payload`), verified on both
ends of every transfer. The server never unpickles payloads — it calls
:func:`repro.experiments.engine.cache.verify_sealed` (footer checksum
only), so it can store blobs for experiments whose code it does not
have, and a bit-flip anywhere between a worker's RAM and the server's
disk is caught at the next hop, costing a recompute, never a wrong
result.

Storage *is* a :class:`repro.experiments.engine.cache.ResultCache`:
version-namespaced keys, atomic temp+rename writes, the same LRU quota
eviction (``--quota``), and sweepable spill files (stale spills are
swept once at startup). A quota-evicted entry is simply a future miss.

Routes (keys are lowercase-hex cache keys):

- ``GET /blob/<key>`` — ``200`` with the blob, or ``404`` (miss; also
  how a corrupt-on-disk entry answers, after being dropped).
- ``PUT /blob/<key>`` — ``204`` stored, ``400`` the body failed its
  checksum footer, ``507`` the store refused it (quota/disk).
- ``GET /healthz`` — ``200`` with a JSON stats document (request
  counters, store location, quota) for monitoring and the CI smoke job.

Clients send their :mod:`repro` version in the ``X-Repro-Version``
header; a mismatch answers ``409`` and the client degrades permanently
for the campaign — version drift can cost cache sharing, never mix
entry formats (the version-namespaced key layout is the second fence).

The server is intentionally trusting (no auth, no TLS): like the
distributed coordinator it expects a private lab network. Nothing a
malicious client sends can corrupt the store — every body is
checksum-verified before the atomic rename — but anyone who can reach
the port can read or add entries.
"""

from __future__ import annotations

import argparse
import json
import re
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Sequence, Union

import repro
from repro.experiments.engine.cache import (CorruptPayloadError, ResultCache,
                                            verify_sealed)

#: Exit codes for the CLI.
EXIT_OK = 0
EXIT_USAGE = 2

#: Default store directory (kept apart from the local result cache so a
#: server and a worker on one machine never share LRU clocks).
DEFAULT_STORE = "~/.cache/repro-cacheserver"

#: Largest PUT body accepted (a guard against a confused client, not a
#: tuning knob — sealed unit payloads are orders of magnitude smaller).
MAX_BLOB_BYTES = 256 * 1024 * 1024

#: Cache keys are lowercase hex digests (the engine uses sha256 prefixes).
_KEY_RE = re.compile(r"/blob/([0-9a-f]{8,128})\Z")

_VERSION_HEADER = "X-Repro-Version"


class _Handler(BaseHTTPRequestHandler):
    """One HTTP request against the blob store (instantiated per request
    by :class:`ThreadingHTTPServer`; state lives on ``self.server``)."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-cacheserver/{repro.__version__}"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Route per-request logging through the server's verbosity flag
        (stderr when ``--verbose``, silent otherwise)."""
        if getattr(self.server, "verbose", False):
            sys.stderr.write("cacheserver: %s - %s\n"
                             % (self.address_string(), format % args))

    def _reply(self, status: int, body: bytes = b"",
               content_type: str = "text/plain") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if body:
            self.wfile.write(body)

    def _check_version(self) -> bool:
        """Reject (409) a client from a different repro release; absent
        headers pass (curl-style debugging stays possible)."""
        theirs = self.headers.get(_VERSION_HEADER)
        if theirs is not None and theirs != repro.__version__:
            self.server.stats["rejected_version"] += 1
            self._reply(409, f"version mismatch: server has repro "
                             f"{repro.__version__}, client sent "
                             f"{theirs}\n".encode())
            return False
        return True

    def do_GET(self) -> None:
        """Serve ``GET /blob/<key>`` and ``GET /healthz``."""
        if self.path == "/healthz":
            body = json.dumps(self.server.stats_document(),
                              indent=2).encode() + b"\n"
            self._reply(200, body, "application/json")
            return
        if not self._check_version():
            return
        match = _KEY_RE.match(self.path)
        if not match:
            self._reply(404, b"unknown path\n")
            return
        self.server.stats["gets"] += 1
        blob = self.server.cache.get_blob(match.group(1))
        if blob is None:
            self.server.stats["get_misses"] += 1
            self._reply(404, b"no such blob\n")
            return
        self.server.stats["get_hits"] += 1
        self.server.stats["bytes_out"] += len(blob)
        self._reply(200, blob, "application/octet-stream")

    def do_PUT(self) -> None:
        """Serve ``PUT /blob/<key>``: checksum-verify, then store
        atomically."""
        if not self._check_version():
            return
        match = _KEY_RE.match(self.path)
        if not match:
            self._reply(400, b"PUT path must be /blob/<hex-key>\n")
            return
        try:
            length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._reply(411, b"Content-Length required\n")
            return
        if not 0 < length <= MAX_BLOB_BYTES:
            self._reply(413, b"blob size out of range\n")
            return
        blob = self.rfile.read(length)
        self.server.stats["puts"] += 1
        self.server.stats["bytes_in"] += len(blob)
        try:
            verify_sealed(blob)
        except CorruptPayloadError as exc:
            self.server.stats["rejected_corrupt"] += 1
            self._reply(400, f"rejected: {exc}\n".encode())
            return
        # Handler threads share one PID, so their spill-file names would
        # collide; the store lock serializes writes (they are tiny).
        with self.server.put_lock:
            stored = self.server.cache.put_blob(match.group(1), blob)
        if not stored:
            self.server.stats["put_refused"] += 1
            self._reply(507, b"store refused the blob (quota or disk)\n")
            return
        self.server.stats["put_stored"] += 1
        self._reply(204)


class _BlobServer(ThreadingHTTPServer):
    """The HTTP server with its store, lock, and counters attached."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], cache: ResultCache,
                 verbose: bool = False):
        super().__init__(address, _Handler)
        self.cache = cache
        self.verbose = verbose
        self.put_lock = threading.Lock()
        self.stats = {"gets": 0, "get_hits": 0, "get_misses": 0,
                      "puts": 0, "put_stored": 0, "put_refused": 0,
                      "rejected_corrupt": 0, "rejected_version": 0,
                      "bytes_in": 0, "bytes_out": 0}

    def stats_document(self) -> dict:
        """The ``/healthz`` JSON document."""
        return {"version": repro.__version__,
                "store": str(self.cache.directory),
                "quota_bytes": self.cache.quota_bytes,
                "evictions": self.cache.evictions,
                **self.stats}


class CacheServer:
    """In-process cache server handle (what the tests and chaos suite
    drive; the CLI is a thin wrapper around it).

    Args:
        address: ``(host, port)`` to bind; port ``0`` picks a free one
            (read the real one back from :attr:`address` after
            :meth:`start`).
        store: Blob store directory; default :data:`DEFAULT_STORE`.
        quota_bytes: Optional LRU quota for the store.
        verbose: Log each request to stderr.
    """

    def __init__(self, address: tuple[str, int] = ("127.0.0.1", 0),
                 store: Union[str, Path, None] = None,
                 quota_bytes: Optional[int] = None,
                 verbose: bool = False):
        self.cache = ResultCache(
            directory=Path(store).expanduser() if store
            else Path(DEFAULT_STORE).expanduser(),
            quota_bytes=quota_bytes)
        self._requested_address = address
        self._verbose = verbose
        self._server: Optional[_BlobServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (only meaningful after
        :meth:`start`)."""
        if self._server is None:
            return self._requested_address
        return self._server.server_address[:2]

    @property
    def address_str(self) -> str:
        """``host:port`` form of :attr:`address` (CLI hand-off)."""
        host, port = self.address
        return f"{host}:{port}"

    def stats_document(self) -> dict:
        """Current ``/healthz`` stats (empty before :meth:`start`)."""
        return self._server.stats_document() if self._server else {}

    def start(self) -> "CacheServer":
        """Bind, sweep stale spill files, and serve in a daemon thread;
        returns ``self`` so tests can write
        ``CacheServer(...).start()``."""
        if self._server is not None:
            raise RuntimeError("cache server already started")
        self.cache.sweep_stale()
        self._server = _BlobServer(self._requested_address, self.cache,
                                   verbose=self._verbose)
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-cacheserver",
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the port (idempotent)."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.tools.cacheserver`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.cacheserver",
        description="Shared result-cache server for worker fleets "
                    "(sealed checksum-footer blobs over HTTP).")
    parser.add_argument("--listen", default="127.0.0.1:8750",
                        metavar="HOST:PORT",
                        help="address to bind (default %(default)s; "
                             "port 0 picks a free port)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help=f"blob store directory "
                             f"(default {DEFAULT_STORE})")
    parser.add_argument("--quota", default=None, metavar="SIZE",
                        help="LRU quota for the store, e.g. 512M or 2G "
                             "(default: unbounded)")
    parser.add_argument("--verbose", action="store_true",
                        help="log each request to stderr")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: serve until SIGINT/SIGTERM, then exit cleanly."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.experiments.engine.distributed import parse_hostport
    from repro.experiments.runner import parse_size
    try:
        address = parse_hostport(args.listen)
        quota = parse_size(args.quota) if args.quota else None
    except ValueError as exc:
        parser.error(str(exc))
    server = CacheServer(address, store=args.store, quota_bytes=quota,
                         verbose=args.verbose)
    # Handlers first, banner second: anyone scripting "wait for the
    # banner, then signal" must find the clean-shutdown path armed.
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    server.start()
    print(f"cache server listening on {server.address_str} "
          f"(store {server.cache.directory}, repro {repro.__version__})",
          file=sys.stderr, flush=True)
    try:
        stop.wait()
    finally:
        server.stop()
    print("cache server stopped", file=sys.stderr)
    return EXIT_OK


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
