"""TCP sender and receiver endpoints.

The sender implements reliability and window clocking: segmentation, the
congestion-window send gate (with a 1-MSS floor), triple-dupACK fast
retransmit, NewReno partial-ACK retransmission during recovery, go-back-N
retransmission timeouts with exponential backoff, Karn-sampled RTT
estimation, and optional pacing for sub-MSS windows (Swift-like CCAs).

The receiver implements cumulative ACKs with out-of-order segment buffering
and the DCTCP ECN-echo rule: with delayed ACKs disabled (the paper's
configuration) every data packet is acknowledged immediately and the ACK's
ECE bit equals that packet's CE mark; with delayed ACKs enabled, the DCTCP
receiver state machine sends an immediate ACK whenever the CE state changes
so the sender's marked-byte accounting stays exact.

Connections are persistent: there is no handshake or teardown (the paper's
workloads reuse connections across bursts, which is what makes CWND state
carry over and diverge at burst boundaries — Section 4.3).

Both endpoints emit flow lifecycle events into ``sim.hooks`` (see
:mod:`repro.simcore.hooks`) on the channels ``flow.open``,
``flow.first_byte``, ``flow.alpha``, ``flow.rto`` and ``flow.close`` —
the per-flow signals the telemetry layer (:mod:`repro.telemetry`) records.
Emission is observer-gated: with no subscribers the cost is one dict
lookup, and behaviour is bit-identical to an uninstrumented stack.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.host import Host
from repro.netsim.packet import ECN, Packet, ack_packet, data_packet
from repro.simcore.kernel import Simulator, Timer
from repro.tcp.cca.base import CongestionControl
from repro.tcp.config import TcpConfig
from repro.tcp.rtt import RttEstimator
from repro.tcp.sack import SackScoreboard

DeliveryHook = Callable[[int], None]
"""Called with the new contiguous delivered byte count after it advances."""

_MAX_RTO_BACKOFF = 64


class SenderStats:
    """Counters a sender accumulates over its lifetime."""

    __slots__ = ("data_packets_sent", "bytes_sent", "retransmitted_packets",
                 "retransmitted_bytes", "fast_retransmits", "rto_events",
                 "acks_received", "ece_acks_received")

    def __init__(self) -> None:
        self.data_packets_sent = 0
        self.bytes_sent = 0
        self.retransmitted_packets = 0
        self.retransmitted_bytes = 0
        self.fast_retransmits = 0
        self.rto_events = 0
        self.acks_received = 0
        self.ece_acks_received = 0


class TcpSender:
    """The sending half of a TCP connection.

    Applications add demand with :meth:`send`; the sender transmits as the
    congestion window allows and guarantees eventual delivery of every byte
    below ``demand_end``.

    Attributes:
        flow_id: Connection identifier (shared with the receiver half).
        cca: The congestion-control algorithm owning the window.
        snd_una: Lowest unacknowledged byte.
        snd_nxt: Next byte to send.
    """

    def __init__(self, sim: Simulator, config: TcpConfig,
                 cca: CongestionControl, host: Host, dst_address: int,
                 flow_id: int):
        self._sim = sim
        # Hoisted observer-gate: the hook registry is consulted on every
        # ACK, so skip the sim attribute chain in the per-packet path.
        self._hook_registry = sim.hooks
        self.config = config
        self.cca = cca
        self._host = host
        self._nic = host.nic
        self._dst = dst_address
        self.flow_id = flow_id
        host.register_flow(flow_id, self)

        self.snd_una = 0
        self.snd_nxt = 0
        self._demand_end = 0
        self._highest_sent = 0
        self._dupacks = 0
        self._in_recovery = False
        self._recovery_point = 0
        self._rto_backoff = 1
        self._last_send_ns: Optional[int] = None
        # One RTT probe at a time (Karn's algorithm): (end_seq, send_time).
        self._rtt_probe: Optional[tuple[int, int]] = None
        self._paced_event = None

        self.sack = SackScoreboard() if config.sack_enabled else None
        # Last receiver-advertised window; None until an ACK reports one.
        self.peer_rwnd_bytes: Optional[int] = None
        # Highest sequence hole-filled during the current SACK recovery,
        # so each hole is retransmitted once per recovery episode.
        self._sack_rtx_above = 0

        self.rtt = RttEstimator(config.initial_rto_ns, config.min_rto_ns,
                                config.max_rto_ns)
        self._timer = Timer(sim, self._on_rto)
        self.stats = SenderStats()

        # Optional FEC encoder (see repro.tcp.fec); attached by a
        # mitigation scheme, None on the default path.
        self.fec = None
        # Pulser-style explicit incast notification: resolved once here so
        # the per-ACK dispatch is a cached attribute, not a getattr.
        self._incast_signal = getattr(cca, "on_incast_signal", None)

        # Telemetry: locate the innermost CCA carrying DCTCP's alpha state
        # (unwrapping guardrail-style decorators) so window-completion
        # alpha updates can be emitted as flow.alpha events.
        inner = cca
        while getattr(inner, "inner", None) is not None:
            inner = inner.inner  # type: ignore[union-attr]
        self._alpha_cca = (inner if hasattr(inner, "alpha")
                           and hasattr(inner, "windows_completed") else None)
        self._alpha_windows_seen = getattr(inner, "windows_completed", 0)
        sim.hooks.emit("flow.open", flow_id, host.address, dst_address,
                       sim.now)

    # --- queries ---------------------------------------------------------

    @property
    def inflight_bytes(self) -> int:
        """Bytes sent but not yet cumulatively acknowledged."""
        return self.snd_nxt - self.snd_una

    @property
    def pipe_bytes(self) -> int:
        """SACK-aware estimate of bytes actually in the network: bytes the
        receiver already holds do not occupy the pipe."""
        sacked = self.sack.sacked_bytes() if self.sack is not None else 0
        return max(0, self.inflight_bytes - sacked)

    @property
    def demand_end(self) -> int:
        """Total bytes the application has asked to deliver."""
        return self._demand_end

    @property
    def pending_bytes(self) -> int:
        """Demand not yet transmitted for the first time."""
        return self._demand_end - self.snd_nxt

    @property
    def done(self) -> bool:
        """Whether every demanded byte has been acknowledged."""
        return self.snd_una >= self._demand_end

    @property
    def active(self) -> bool:
        """Whether the flow has unacknowledged or unsent demand."""
        return not self.done

    def current_rto_ns(self) -> int:
        """The RTO the timer would be armed with right now."""
        return min(self.rtt.rto_ns() * self._rto_backoff,
                   self.config.max_rto_ns)

    # --- application API ---------------------------------------------------

    def send(self, nbytes: int) -> None:
        """Add ``nbytes`` of demand to the connection."""
        if nbytes <= 0:
            raise ValueError(f"send size must be positive, got {nbytes}")
        self._maybe_restart_after_idle()
        self._demand_end += nbytes
        self._try_send()

    def _maybe_restart_after_idle(self) -> None:
        if not self.config.cwnd_restart_after_idle:
            return
        if self._last_send_ns is None or self.inflight_bytes > 0:
            return
        idle_ns = self._sim.now - self._last_send_ns
        threshold = (self.config.idle_restart_threshold_ns
                     if self.config.idle_restart_threshold_ns is not None
                     else self.current_rto_ns())
        if idle_ns > threshold:
            self.cca.on_restart_after_idle()

    # --- transmission -------------------------------------------------------

    def _send_window_bytes(self) -> float:
        """The window the sender enforces: congestion window capped by the
        receiver-advertised window (floored at one MSS so a tiny advertised
        window degrades to stop-and-wait rather than deadlock)."""
        cwnd = self.cca.effective_cwnd_bytes()
        if self.peer_rwnd_bytes is not None:
            cwnd = min(cwnd, float(max(self.peer_rwnd_bytes,
                                       self.config.mss_bytes)))
        return cwnd

    def _try_send(self) -> None:
        pacing = self.cca.pacing_interval_ns(self.rtt.srtt_ns)
        if pacing is not None:
            self._try_send_paced(pacing)
            return
        cwnd = self._send_window_bytes()
        # Window-filling loop with the invariant quantities hoisted out:
        # nothing inside _emit_segment can re-enter this sender (packet
        # hand-off to the NIC only schedules events), so snd_una, the SACK
        # scoreboard and the demand edge are loop constants and the pipe
        # estimate can be advanced incrementally.
        demand_end = self._demand_end
        nxt = self.snd_nxt
        if nxt >= demand_end:
            return
        mss = self.config.mss_bytes
        sacked = self.sack.sacked_bytes() if self.sack is not None else 0
        pipe = nxt - self.snd_una - sacked
        while nxt < demand_end and (pipe if pipe > 0 else 0) < cwnd:
            payload = mss if demand_end - nxt > mss else demand_end - nxt
            self._emit_segment(nxt, payload, is_retransmit=False)
            nxt += payload
            pipe += payload
            self.snd_nxt = nxt

    def _try_send_paced(self, interval_ns: int) -> None:
        """Pacing mode: one segment outstanding at a time, spaced by the
        CCA's pacing interval (used when cwnd < 1 MSS)."""
        if self._paced_event is not None:
            return
        if self.snd_nxt >= self._demand_end or self.inflight_bytes > 0:
            return
        elapsed = (self._sim.now - self._last_send_ns
                   if self._last_send_ns is not None else interval_ns)
        delay = max(0, interval_ns - elapsed)
        self._paced_event = self._sim.schedule(delay, self._paced_fire)

    def _paced_fire(self) -> None:
        self._paced_event = None
        if self.snd_nxt >= self._demand_end or self.inflight_bytes > 0:
            return
        payload = min(self.config.mss_bytes, self._demand_end - self.snd_nxt)
        self._emit_segment(self.snd_nxt, payload, is_retransmit=False)
        self.snd_nxt += payload

    def _emit_segment(self, seq: int, payload: int,
                      is_retransmit: bool) -> None:
        packet = data_packet(self.flow_id, self._host.address, self._dst,
                             seq, payload, is_retransmit=is_retransmit,
                             ecn_capable=self.config.ecn_enabled)
        now = self._sim.now
        packet.sent_time_ns = now
        self.stats.data_packets_sent += 1
        self.stats.bytes_sent += payload
        if is_retransmit:
            self.stats.retransmitted_packets += 1
            self.stats.retransmitted_bytes += payload
            # Karn: a probe overlapping retransmitted data is ambiguous.
            if (self._rtt_probe is not None
                    and seq < self._rtt_probe[0] <= seq + payload + 1):
                self._rtt_probe = None
        elif self._rtt_probe is None:
            self._rtt_probe = (seq + payload, now)
        if seq + payload > self._highest_sent:
            self._highest_sent = seq + payload
        self._last_send_ns = now
        self._nic.send(packet)
        if self.fec is not None and not is_retransmit:
            self.fec.on_segment_sent(seq, payload, now)
        if not self._timer.armed:
            self._timer.start(self.current_rto_ns())

    # --- packet input --------------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Process an arriving packet for this flow (ACKs only)."""
        if packet.is_ack:
            if packet.rwnd_bytes is not None:
                self.peer_rwnd_bytes = packet.rwnd_bytes
            if (packet.incast_degree is not None
                    and self._incast_signal is not None):
                self._incast_signal(packet.incast_degree, self._sim.now)
            self._on_ack(packet.ack_seq, packet.ece, packet.sack_blocks)

    def _on_ack(self, ack_seq: int, ece: bool,
                sack_blocks: tuple = ()) -> None:
        now = self._sim.now
        self.stats.acks_received += 1
        if ece:
            self.stats.ece_acks_received += 1
        if self.sack is not None:
            for start, end in sack_blocks:
                self.sack.add(start, end)
        if ack_seq > self.snd_una:
            self._on_new_ack(ack_seq, ece, now)
        else:
            self._on_dup_ack(ece, now)
        self._try_send()

    def _on_new_ack(self, ack_seq: int, ece: bool, now: int) -> None:
        bytes_acked = ack_seq - self.snd_una
        self.snd_una = ack_seq
        if self.snd_nxt < self.snd_una:
            self.snd_nxt = self.snd_una
        self._dupacks = 0
        self._rto_backoff = 1
        if self._rtt_probe is not None and ack_seq >= self._rtt_probe[0]:
            rtt_sample = now - self._rtt_probe[1]
            self._rtt_probe = None
            if rtt_sample > 0:
                self.rtt.sample(rtt_sample)
                self.cca.on_rtt_sample(rtt_sample, now)
        if self.sack is not None:
            self.sack.advance(ack_seq)
        if self._in_recovery:
            if ack_seq >= self._recovery_point:
                self._in_recovery = False
                self._sack_rtx_above = 0
            elif self.sack is not None:
                self._fill_sack_holes()
            else:
                # NewReno partial ACK: the next hole starts at snd_una.
                payload = min(self.config.mss_bytes,
                              self._demand_end - self.snd_una)
                if payload > 0:
                    self._emit_segment(self.snd_una, payload,
                                       is_retransmit=True)
        self.cca.on_ack(bytes_acked, ece, self.snd_una, self.snd_nxt, now)
        if self.inflight_bytes > 0:
            self._timer.start(self.current_rto_ns())
        else:
            self._timer.stop()
        hooks = self._hook_registry
        if hooks.any_active:
            if self._alpha_cca is not None:
                windows = self._alpha_cca.windows_completed
                if windows != self._alpha_windows_seen:
                    self._alpha_windows_seen = windows
                    hooks.emit("flow.alpha", self.flow_id,
                               self._host.address, self._alpha_cca.alpha,
                               now)
            if self.snd_una >= self._demand_end:
                hooks.emit("flow.close", self.flow_id, self._host.address,
                           now)

    def _on_dup_ack(self, ece: bool, now: int) -> None:
        if self.inflight_bytes == 0:
            return
        self._dupacks += 1
        self.cca.on_ack(0, ece, self.snd_una, self.snd_nxt, now)
        if self.sack is not None:
            self._maybe_sack_recovery(now)
            return
        if (self._dupacks == self.config.dupack_threshold
                and not self._in_recovery):
            self._in_recovery = True
            self._recovery_point = self.snd_nxt
            self.stats.fast_retransmits += 1
            self.cca.on_loss(now)
            payload = min(self.config.mss_bytes,
                          self._demand_end - self.snd_una)
            if payload > 0:
                self._emit_segment(self.snd_una, payload, is_retransmit=True)

    # --- SACK recovery ------------------------------------------------------

    def _maybe_sack_recovery(self, now: int) -> None:
        assert self.sack is not None
        if self._in_recovery:
            self._fill_sack_holes()
            return
        if self.sack.is_lost(self.snd_una, self.config.mss_bytes,
                             self.config.dupack_threshold):
            self._in_recovery = True
            self._recovery_point = self.snd_nxt
            self._sack_rtx_above = 0
            self.stats.fast_retransmits += 1
            self.cca.on_loss(now)
            self._fill_sack_holes()

    def _fill_sack_holes(self) -> None:
        """Retransmit presumed-lost holes, pipe-limited, each at most once
        per recovery episode."""
        assert self.sack is not None
        cwnd = self._send_window_bytes()
        while self.pipe_bytes < cwnd:
            hole = self.sack.next_hole(self.snd_una,
                                       above=self._sack_rtx_above)
            if hole is None or hole >= self._recovery_point:
                break
            payload = min(self.config.mss_bytes, self._demand_end - hole,
                          self._recovery_point - hole)
            if payload <= 0:
                break
            self._emit_segment(hole, payload, is_retransmit=True)
            self._sack_rtx_above = hole + payload

    # --- timeout ---------------------------------------------------------------

    def _on_rto(self) -> None:
        if self.inflight_bytes == 0:
            return
        self.stats.rto_events += 1
        self.cca.on_rto(self._sim.now)
        self._in_recovery = False
        self._sack_rtx_above = 0
        if self.sack is not None:
            self.sack.clear()
        self._dupacks = 0
        self._rtt_probe = None
        # Go-back-N: rewind and resend from the last cumulative ACK.
        self.snd_nxt = self.snd_una
        self._rto_backoff = min(self._rto_backoff * 2, _MAX_RTO_BACKOFF)
        self._hook_registry.emit("flow.rto", self.flow_id,
                                 self._host.address, self._rto_backoff,
                                 self._sim.now)
        self._timer.start(self.current_rto_ns())
        self._retransmit_after_rto()

    def _retransmit_after_rto(self) -> None:
        cwnd = self._send_window_bytes()
        while self.snd_nxt < self._demand_end and self.pipe_bytes < cwnd:
            payload = min(self.config.mss_bytes,
                          self._demand_end - self.snd_nxt)
            self._emit_segment(self.snd_nxt, payload,
                               is_retransmit=self.snd_nxt < self._highest_sent)
            self.snd_nxt += payload

    def __repr__(self) -> str:
        return (f"TcpSender(flow={self.flow_id}, una={self.snd_una}, "
                f"nxt={self.snd_nxt}, demand={self._demand_end}, "
                f"cwnd={self.cca.effective_cwnd_bytes():.0f})")


class ReceiverStats:
    """Counters a receiver accumulates over its lifetime."""

    __slots__ = ("data_packets", "duplicate_packets", "acks_sent",
                 "ece_acks_sent", "bytes_received", "ce_packets")

    def __init__(self) -> None:
        self.data_packets = 0
        self.duplicate_packets = 0
        self.acks_sent = 0
        self.ece_acks_sent = 0
        self.bytes_received = 0
        self.ce_packets = 0


class TcpReceiver:
    """The receiving half of a TCP connection.

    Attributes:
        flow_id: Connection identifier.
        rcv_nxt: Next expected contiguous byte (== delivered byte count).
    """

    def __init__(self, sim: Simulator, config: TcpConfig, host: Host,
                 peer_address: int, flow_id: int):
        self._sim = sim
        self._hook_registry = sim.hooks
        self.config = config
        self._host = host
        self._nic = host.nic
        self._peer = peer_address
        self.flow_id = flow_id
        host.register_flow(flow_id, self)

        self.rcv_nxt = 0
        self._ooo: list[tuple[int, int]] = []  # sorted disjoint [start, end)
        self._hooks: list[DeliveryHook] = []
        # Flow control: advertised on every ACK; None = unlimited.
        # Controllers (e.g. the ICTCP-like throttle) mutate this at runtime.
        self.advertised_window_bytes = config.receiver_window_bytes
        self.stats = ReceiverStats()
        self._first_byte_emitted = False
        # Optional FEC decoder (see repro.tcp.fec); attached by a
        # mitigation scheme, None on the default path.
        self.fec = None

        # Delayed-ACK state (DCTCP receiver state machine).
        self._pending_acks = 0
        self._last_ce = False
        self._ack_timer = Timer(sim, self._flush_delayed_ack)

    @property
    def delivered_bytes(self) -> int:
        """Contiguously delivered bytes (application-visible)."""
        return self.rcv_nxt

    def add_delivery_hook(self, hook: DeliveryHook) -> None:
        """Invoke ``hook(delivered_bytes)`` whenever delivery advances."""
        self._hooks.append(hook)

    # --- packet input ----------------------------------------------------

    def handle_packet(self, packet: Packet) -> None:
        """Process an arriving packet for this flow (data only)."""
        if packet.is_ack or packet.payload_bytes == 0:
            return
        if packet.fec_block is not None:
            if self.fec is not None:
                self.fec.on_repair(packet)
            return
        self.stats.data_packets += 1
        self.stats.bytes_received += packet.payload_bytes
        ce = packet.ecn == ECN.CE
        if ce:
            self.stats.ce_packets += 1
        advanced = self._accept(packet.seq, packet.end_seq)
        if not advanced and packet.end_seq <= self.rcv_nxt:
            self.stats.duplicate_packets += 1
        if self.config.delayed_ack:
            self._delayed_ack(ce)
        else:
            self._send_ack(ce)
        if advanced:
            if not self._first_byte_emitted:
                self._first_byte_emitted = True
                self._hook_registry.emit("flow.first_byte", self.flow_id,
                                         self._host.address, self._sim.now)
            for hook in self._hooks:
                hook(self.rcv_nxt)

    def missing_ranges(self, start: int, end: int) -> list[tuple[int, int]]:
        """Byte ranges within ``[start, end)`` not yet received, neither
        contiguously nor in the out-of-order buffer (used by the FEC
        decoder to decide what a repair packet can reconstruct)."""
        cursor = max(start, self.rcv_nxt)
        if cursor >= end:
            return []
        missing: list[tuple[int, int]] = []
        for r_start, r_end in self._ooo:
            if r_end <= cursor:
                continue
            if r_start >= end:
                break
            if r_start > cursor:
                missing.append((cursor, min(r_start, end)))
            cursor = max(cursor, r_end)
            if cursor >= end:
                break
        if cursor < end:
            missing.append((cursor, end))
        return missing

    def deliver_ranges(self, ranges: list[tuple[int, int]]) -> None:
        """Deliver byte ranges recovered out-of-band (FEC repair).

        Each range is merged into the receive state exactly as if the bytes
        had arrived as ordinary segments; if contiguous delivery advances,
        a recovery ACK is sent so the sender's cumulative state catches up
        without waiting for an RTO, and the usual first-byte/delivery hooks
        fire.
        """
        advanced = False
        for start, end in ranges:
            if end > start and self._accept(start, end):
                advanced = True
        if not advanced:
            return
        self._send_ack(False)
        if not self._first_byte_emitted:
            self._first_byte_emitted = True
            self._hook_registry.emit("flow.first_byte", self.flow_id,
                                     self._host.address, self._sim.now)
        for hook in self._hooks:
            hook(self.rcv_nxt)

    def _accept(self, start: int, end: int) -> bool:
        """Merge ``[start, end)`` into the receive state; returns whether
        ``rcv_nxt`` advanced."""
        if end <= self.rcv_nxt:
            return False
        start = max(start, self.rcv_nxt)
        self._insert_range(start, end)
        before = self.rcv_nxt
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            first_start, first_end = self._ooo.pop(0)
            self.rcv_nxt = max(self.rcv_nxt, first_end)
        return self.rcv_nxt > before

    def _insert_range(self, start: int, end: int) -> None:
        merged: list[tuple[int, int]] = []
        placed = False
        for r_start, r_end in self._ooo:
            if r_end < start or end < r_start:
                if not placed and r_start > end:
                    merged.append((start, end))
                    placed = True
                merged.append((r_start, r_end))
            else:
                start = min(start, r_start)
                end = max(end, r_end)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._ooo = merged

    # --- acknowledgments -----------------------------------------------------

    def _send_ack(self, ece: bool) -> None:
        blocks: tuple = ()
        if self.config.sack_enabled and self._ooo:
            blocks = tuple(self._ooo[:self.config.max_sack_blocks])
        ack = ack_packet(self.flow_id, self._host.address, self._peer,
                         self.rcv_nxt, ece=ece, sack_blocks=blocks,
                         rwnd_bytes=self.advertised_window_bytes)
        self.stats.acks_sent += 1
        if ece:
            self.stats.ece_acks_sent += 1
        self._nic.send(ack)

    def _delayed_ack(self, ce: bool) -> None:
        """DCTCP delayed-ACK rule: flush immediately on a CE-state change so
        the sender's marked-byte fraction stays exact; otherwise coalesce
        two packets per ACK with a flush timeout."""
        if self._pending_acks > 0 and ce != self._last_ce:
            self._send_ack(self._last_ce)
            self._pending_acks = 0
            self._ack_timer.stop()
        self._last_ce = ce
        self._pending_acks += 1
        if self._pending_acks >= 2:
            self._send_ack(ce)
            self._pending_acks = 0
            self._ack_timer.stop()
        else:
            self._ack_timer.start(self.config.delayed_ack_timeout_ns)

    def _flush_delayed_ack(self) -> None:
        if self._pending_acks > 0:
            self._send_ack(self._last_ce)
            self._pending_acks = 0

    def __repr__(self) -> str:
        return (f"TcpReceiver(flow={self.flow_id}, rcv_nxt={self.rcv_nxt}, "
                f"ooo={len(self._ooo)})")


_next_flow_id = 0


def open_connection(sim: Simulator, config: TcpConfig,
                    cca: CongestionControl, sender_host: Host,
                    receiver_host: Host,
                    flow_id: Optional[int] = None
                    ) -> tuple[TcpSender, TcpReceiver]:
    """Create both halves of a persistent connection between two hosts.

    Flow ids are globally unique by default so NIC demultiplexing stays
    unambiguous no matter how hosts are shared between experiments.
    """
    global _next_flow_id
    if flow_id is None:
        flow_id = _next_flow_id
        _next_flow_id += 1
    sender = TcpSender(sim, config, cca, sender_host, receiver_host.address,
                       flow_id)
    receiver = TcpReceiver(sim, config, receiver_host, sender_host.address,
                           flow_id)
    return sender, receiver
