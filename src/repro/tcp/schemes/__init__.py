"""The pluggable mitigation-scheme registry.

``scheme`` is a config axis exactly like ``cca`` or ``backend``: a name
looked up here, validated at config-construction time, installed into the
live simulation by the experiment environments. The registry enforces the
contract ``docs/MITIGATIONS.md`` documents — unique names, declared
knobs, the :class:`~repro.tcp.schemes.base.MitigationScheme` lifecycle.

Built-in zoo (registered on import):

- ``dctcp`` — the baseline, no extra mechanism (default; elided from
  cache keys and exports so pre-zoo artifacts stay byte-identical);
- ``ictcp`` — receiver-window throttling (Wu et al., CoNEXT 2010);
- ``pulser`` — explicit incast notifications piggybacked on ACKs, with
  sender multiplicative backoff;
- ``fec`` — proactive redundancy so short-flow losses recover without
  RTO;
- ``detect`` — online switch-side burst detection on the
  ``queue.watermark`` channel (measurement-only).

Third-party schemes register through :func:`register_scheme`; see the
"writing a new scheme" guide in ``docs/MITIGATIONS.md``.
"""

from __future__ import annotations

from repro.tcp.schemes.base import (BaselineScheme, MitigationScheme,
                                    SchemeContext, SchemeRuntime)
from repro.tcp.schemes.detect import DetectScheme
from repro.tcp.schemes.fec import FecScheme
from repro.tcp.schemes.ictcp import IctcpScheme
from repro.tcp.schemes.pulser import PulserScheme

DEFAULT_SCHEME = "dctcp"
"""The scheme every config defaults to; never cache-key-visible."""

_REGISTRY: dict[str, MitigationScheme] = {}


def register_scheme(scheme: MitigationScheme, *,
                    replace: bool = False) -> MitigationScheme:
    """Register ``scheme`` under its ``name``.

    Raises ``ValueError`` on an empty name or (unless ``replace=True``) a
    name already taken — a silent shadow would make two experiments with
    the same config axis run different code.
    """
    if not scheme.name:
        raise ValueError(f"{type(scheme).__name__} declares no name")
    if scheme.name in _REGISTRY and not replace:
        raise ValueError(f"scheme {scheme.name!r} is already registered "
                         f"(by {type(_REGISTRY[scheme.name]).__name__}); "
                         f"pass replace=True to override")
    _REGISTRY[scheme.name] = scheme
    return scheme


def get_scheme(name: str) -> MitigationScheme:
    """Look up a registered scheme; ``ValueError`` lists the choices."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(f"unknown scheme {name!r}; "
                         f"choose from {scheme_names()}") from None


def scheme_names() -> list[str]:
    """Sorted names of every registered scheme."""
    return sorted(_REGISTRY)


for _builtin in (BaselineScheme(), IctcpScheme(), PulserScheme(),
                 FecScheme(), DetectScheme()):
    register_scheme(_builtin)

__all__ = ["DEFAULT_SCHEME", "MitigationScheme", "SchemeContext",
           "SchemeRuntime", "register_scheme", "get_scheme",
           "scheme_names", "BaselineScheme", "IctcpScheme",
           "PulserScheme", "FecScheme", "DetectScheme"]
