"""The mitigation-scheme plugin interface.

A *scheme* packages one incast mitigation — its knobs, its wiring into a
live simulation, and its exported statistics — behind a uniform contract
so experiment environments can treat "which mitigation runs" as a single
config axis (``scheme="pulser"``) the same way they treat ``cca`` or
``backend``. ``docs/MITIGATIONS.md`` is the prose form of this contract;
the classes here are what the registry enforces.

The lifecycle an environment drives:

1. :meth:`MitigationScheme.validate_params` — at config-construction
   time, so a bad knob fails before any simulation work.
2. :meth:`MitigationScheme.install` — after the topology is built and
   **before any traffic**, returning a :class:`SchemeRuntime`. Installing
   before traffic matters: schemes that watch queues must attach their
   watchers while the switch fast paths can still fall back to the
   byte-identical legacy pump.
3. :meth:`SchemeRuntime.wrap_cca` — around every connection's CCA at
   creation (decorator pattern, like the guardrail).
4. :meth:`SchemeRuntime.on_connection` — with each connection's endpoint
   pair once both exist.
5. :meth:`SchemeRuntime.stop` — when the workload completes.
6. :meth:`SchemeRuntime.finish` — after the run, returning the scheme's
   JSON-able stats for result export.

Every hook except ``install`` has a no-op default, so a minimal scheme
only implements what it actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.host import Host
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator
from repro.tcp.cca.base import CongestionControl
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpReceiver, TcpSender


@dataclass
class SchemeContext:
    """Everything a scheme may wire into, handed to ``install``.

    Attributes:
        sim: The live simulator (for hooks, timers, probes).
        tcp: The TCP configuration connections will use.
        n_flows: Planned number of participating flows.
        ecn_threshold_packets: Bottleneck marking threshold (0 = no ECN).
        queue_capacity_packets: Bottleneck queue capacity.
        bdp_bytes: Bandwidth-delay product of the bottleneck path.
        bottleneck_queue: The congested egress queue (watchable only
            before traffic starts).
        receiver_host: The incast destination host — the vantage point on
            the ACK return path where switch-side signals can be stamped.
    """

    sim: Simulator
    tcp: TcpConfig
    n_flows: int
    ecn_threshold_packets: int
    queue_capacity_packets: int
    bdp_bytes: int
    bottleneck_queue: DropTailQueue
    receiver_host: Host


class SchemeRuntime:
    """A scheme's live wiring for one simulation run.

    Subclasses override the hooks they need; the defaults are no-ops so
    the baseline scheme is literally this class.
    """

    def wrap_cca(self, cca: CongestionControl) -> CongestionControl:
        """Decorate one connection's CCA (called once per connection,
        before the connection is constructed)."""
        return cca

    def on_connection(self, sender: TcpSender,
                      receiver: TcpReceiver) -> None:
        """Wire one established connection's endpoint pair."""

    def stop(self) -> None:
        """Stop periodic activity (registered as a workload done
        callback so the simulation drains promptly)."""

    def finish(self, burst_starts_ns: Optional[list[int]] = None,
               burst_duration_ns: Optional[int] = None) -> dict:
        """JSON-able scheme statistics for result export.

        Args:
            burst_starts_ns: Ground-truth burst start times, when the
                driving workload knows them (the dumbbell incast does;
                scenario flows do not).
            burst_duration_ns: Ground-truth burst length, likewise.
        """
        return {}


class MitigationScheme:
    """One registered mitigation: metadata, knobs, and an installer.

    Class attributes (the registry's contract, mirrored by
    ``docs/MITIGATIONS.md``):

    - ``name``: registry key, the value of the ``scheme`` config axis;
    - ``provenance``: the paper or system the mechanism comes from;
    - ``target_mode``: which operating-mode boundary it aims to move;
    - ``summary``: one-line mechanism description;
    - ``default_params``: every knob with its default — the *complete*
      set of keys ``validate_params`` accepts.
    """

    name: str = ""
    provenance: str = ""
    target_mode: str = ""
    summary: str = ""
    default_params: dict = {}

    def validate_params(self, params: dict) -> dict:
        """Merge ``params`` over the defaults, rejecting unknown keys.

        Returns the merged dict; raises ``ValueError`` for a knob the
        scheme does not declare or a value :meth:`check_params` rejects.
        """
        unknown = sorted(set(params) - set(self.default_params))
        if unknown:
            raise ValueError(
                f"scheme {self.name!r} does not accept {unknown}; "
                f"knobs: {sorted(self.default_params)}")
        merged = {**self.default_params, **params}
        self.check_params(merged)
        return merged

    def check_params(self, merged: dict) -> None:
        """Validate merged knob values (override to add constraints)."""

    def install(self, ctx: SchemeContext, params: dict) -> SchemeRuntime:
        """Instantiate the scheme's runtime wiring for one simulation."""
        raise NotImplementedError


class BaselineScheme(MitigationScheme):
    """The default scheme: plain DCTCP, no extra mechanism.

    Exists so ``scheme="dctcp"`` is a valid registry lookup; environments
    skip installation entirely for the default, keeping the pre-zoo
    packet-for-packet behaviour (and golden fixtures) untouched.
    """

    name = "dctcp"
    provenance = "Alizadeh et al., SIGCOMM 2010 (the paper's baseline)"
    target_mode = "none (baseline)"
    summary = "DCTCP alone, exactly as the Section 4 experiments run it"
    default_params: dict = {}

    def install(self, ctx: SchemeContext, params: dict) -> SchemeRuntime:
        """A no-op runtime (the baseline adds no wiring)."""
        self.validate_params(params)
        return SchemeRuntime()
