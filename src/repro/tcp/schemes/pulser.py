"""Pulser-style explicit incast notification.

Pulser's idea: the congested switch port *knows* an incast is forming —
it sees many distinct flows converge on one egress — and can tell the
senders explicitly, before queue buildup turns into marks and drops. This
scheme models the mechanism end to end inside the simulator:

- an :class:`IncastDegreeEstimator` watches the bottleneck queue and
  tracks how many distinct flows enqueued data within a sliding window
  (the switch-side incast-degree counter);
- a NIC egress hook at the incast destination stamps that degree onto
  ACK-path packets (``Packet.incast_degree``) whenever it crosses the
  notification threshold — the piggybacked switch→sender signal;
- each sender's :class:`PulserBackoff` CCA decorator receives the signal
  (``on_incast_signal``, dispatched by ``TcpSender.handle_packet``) and
  multiplicatively backs its window off, at most once per guard interval,
  *before* DCTCP's alpha would have reacted.

Because the estimator attaches a queue watcher before any traffic, the
switch serves the queue through its byte-identical legacy pump — the
signal changes sender behaviour, never switch arithmetic.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.netsim.packet import Packet
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator
from repro.tcp.cca.base import CongestionControl
from repro.tcp.schemes.base import (MitigationScheme, SchemeContext,
                                    SchemeRuntime)


class IncastDegreeEstimator:
    """Sliding-window count of distinct flows converging on one queue.

    Installed as a queue watcher; every data-packet enqueue refreshes its
    flow's timestamp, and :meth:`degree` reports how many flows were seen
    within the last ``window_ns``.
    """

    def __init__(self, sim: Simulator, queue: DropTailQueue,
                 window_ns: int):
        if window_ns <= 0:
            raise ValueError("window_ns must be positive")
        self._sim = sim
        self._window_ns = window_ns
        self._seen: dict[int, int] = {}
        queue.add_watcher(self._on_queue_event)

    def _on_queue_event(self, event: str, queue: DropTailQueue,
                        packet: Packet) -> None:
        if event == "enqueue" and packet.payload_bytes > 0:
            self._seen[packet.flow_id] = self._sim.now

    def degree(self, now: int) -> int:
        """Distinct flows seen within the window ending at ``now``."""
        horizon = now - self._window_ns
        stale = [fid for fid, t in self._seen.items() if t < horizon]
        for fid in stale:
            del self._seen[fid]
        return len(self._seen)


class PulserBackoff(CongestionControl):
    """CCA decorator applying multiplicative backoff on incast signals.

    Wraps any CCA (guardrail-style: the inner algorithm owns the real
    window state) and adds :meth:`on_incast_signal`: when the stamped
    degree reaches ``degree_threshold``, the inner window and ssthresh
    are cut by ``beta``, at most once per ``min_gap_ns`` so one incast's
    flurry of stamped ACKs triggers one backoff, not one per ACK.
    """

    name = "pulser"

    def __init__(self, inner: CongestionControl, beta: float,
                 degree_threshold: int, min_gap_ns: int):
        self._inner = inner
        self.beta = beta
        self.degree_threshold = degree_threshold
        self.min_gap_ns = min_gap_ns
        self._last_backoff_ns: Optional[int] = None
        self.signals_seen = 0
        self.backoffs = 0
        super().__init__(inner.config)

    @property
    def cwnd_bytes(self) -> float:  # type: ignore[override]
        """The inner algorithm's congestion window."""
        return self._inner.cwnd_bytes

    @cwnd_bytes.setter
    def cwnd_bytes(self, value: float) -> None:
        """Write through to the inner algorithm's window."""
        self._inner.cwnd_bytes = value

    @property
    def ssthresh_bytes(self) -> float:  # type: ignore[override]
        """The inner algorithm's slow-start threshold."""
        return self._inner.ssthresh_bytes

    @ssthresh_bytes.setter
    def ssthresh_bytes(self, value: float) -> None:
        """Write through to the inner algorithm's threshold."""
        self._inner.ssthresh_bytes = value

    @property
    def inner(self) -> CongestionControl:
        """The wrapped algorithm."""
        return self._inner

    def on_incast_signal(self, degree: int, now_ns: int) -> None:
        """React to a stamped incast-degree notification."""
        self.signals_seen += 1
        if degree < self.degree_threshold:
            return
        if (self._last_backoff_ns is not None
                and now_ns - self._last_backoff_ns < self.min_gap_ns):
            return
        self._last_backoff_ns = now_ns
        self.backoffs += 1
        floor = float(self.mss)
        reduced = max(floor, self._inner.cwnd_bytes * self.beta)
        self._inner.cwnd_bytes = reduced
        self._inner.ssthresh_bytes = max(floor, reduced)

    def effective_cwnd_bytes(self) -> float:
        """The inner window (the decorator never clamps, only cuts)."""
        return self._inner.effective_cwnd_bytes()

    def pacing_interval_ns(self, srtt_ns: Optional[float]) -> Optional[int]:
        """Delegate pacing to the inner algorithm."""
        return self._inner.pacing_interval_ns(srtt_ns)

    def on_ack(self, bytes_acked: int, ece: bool, snd_una: int,
               snd_nxt: int, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_ack(bytes_acked, ece, snd_una, snd_nxt, now_ns)

    def on_loss(self, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_loss(now_ns)

    def on_rto(self, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_rto(now_ns)

    def on_rtt_sample(self, rtt_ns: int, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_rtt_sample(rtt_ns, now_ns)

    def on_restart_after_idle(self) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_restart_after_idle()

    def __repr__(self) -> str:
        return (f"PulserBackoff(beta={self.beta}, "
                f"thresh={self.degree_threshold}, inner={self._inner!r})")


class _PulserRuntime(SchemeRuntime):
    """Live Pulser wiring: estimator, ACK stamping, per-flow backoff."""

    def __init__(self, ctx: SchemeContext, params: dict):
        self._params = params
        self._estimator = IncastDegreeEstimator(
            ctx.sim, ctx.bottleneck_queue,
            window_ns=params["window_ns"])
        self._wrappers: list[PulserBackoff] = []
        self._stamped = 0
        threshold = params["degree_threshold"]
        estimator = self._estimator

        def stamp(packet: Packet, now: int) -> None:
            if packet.is_ack:
                degree = estimator.degree(now)
                if degree >= threshold:
                    packet.incast_degree = degree
                    self._stamped += 1

        ctx.receiver_host.nic.add_egress_hook(stamp)

    def wrap_cca(self, cca: CongestionControl) -> CongestionControl:
        """Give the connection an incast-signal-reactive window."""
        wrapper = PulserBackoff(cca, beta=self._params["beta"],
                                degree_threshold=self._params[
                                    "degree_threshold"],
                                min_gap_ns=self._params["min_gap_ns"])
        self._wrappers.append(wrapper)
        return wrapper

    def finish(self, burst_starts_ns=None, burst_duration_ns=None) -> dict:
        """Notification/backoff counters across all flows."""
        return {
            "acks_stamped": self._stamped,
            "signals_seen": sum(w.signals_seen for w in self._wrappers),
            "backoffs": sum(w.backoffs for w in self._wrappers),
            "flows_backed_off": sum(1 for w in self._wrappers
                                    if w.backoffs),
        }


class PulserScheme(MitigationScheme):
    """Explicit incast notification with sender multiplicative backoff."""

    name = "pulser"
    provenance = "Pulser (explicit incast notifications; see PAPERS.md)"
    target_mode = ("Mode 2/3 onset: shed window before the standing "
                   "queue forms")
    summary = ("switch-side incast degree piggybacked on ACKs; senders "
               "multiplicatively back off")
    default_params = {
        "beta": 0.5,
        "degree_threshold": 16,
        "window_ns": units.usec(200.0),
        "min_gap_ns": units.usec(100.0),
    }

    def check_params(self, merged: dict) -> None:
        """Reject out-of-range knob values."""
        if not 0.0 < merged["beta"] < 1.0:
            raise ValueError("beta must be in (0, 1)")
        if merged["degree_threshold"] < 1:
            raise ValueError("degree_threshold must be >= 1")
        if merged["window_ns"] <= 0 or merged["min_gap_ns"] < 0:
            raise ValueError("window_ns must be positive and min_gap_ns "
                             "non-negative")

    def install(self, ctx: SchemeContext, params: dict) -> SchemeRuntime:
        """Attach the estimator, the ACK stamper, and the wrappers."""
        return _PulserRuntime(ctx, self.validate_params(params))
