"""Registry wiring for ICTCP-style receiver-window throttling.

The mechanism lives in :mod:`repro.tcp.ictcp` (and predates the scheme
registry — ablation M drives it directly); this module packages it as a
pluggable scheme: one :class:`~repro.tcp.ictcp.ReceiverWindowThrottle`
at the incast destination, budgeted to the healthy Mode-1 region (ECN
threshold plus path BDP, the same budget the sender-side guardrail
divides).
"""

from __future__ import annotations

from repro import units
from repro.netsim.packet import TCP_IP_HEADER_BYTES
from repro.tcp.connection import TcpReceiver, TcpSender
from repro.tcp.ictcp import ReceiverWindowThrottle
from repro.tcp.schemes.base import (MitigationScheme, SchemeContext,
                                    SchemeRuntime)


class _IctcpRuntime(SchemeRuntime):
    """Live wiring: one throttle at the destination, fed lazily."""

    def __init__(self, ctx: SchemeContext, params: dict):
        budget = params["budget_bytes"]
        if budget is None:
            wire_packet = ctx.tcp.mss_bytes + TCP_IP_HEADER_BYTES
            budget = (ctx.ecn_threshold_packets * wire_packet
                      + ctx.bdp_bytes)
        self.throttle = ReceiverWindowThrottle(
            ctx.sim, [], budget_bytes=max(budget, ctx.tcp.mss_bytes),
            period_ns=params["period_ns"],
            mss_bytes=ctx.tcp.mss_bytes)
        self.throttle.start()

    def on_connection(self, sender: TcpSender,
                      receiver: TcpReceiver) -> None:
        """Put the new connection under the shared budget."""
        self.throttle.add_connection(receiver)

    def stop(self) -> None:
        """Lift the advertised-window limits."""
        self.throttle.stop()

    def finish(self, burst_starts_ns=None, burst_duration_ns=None) -> dict:
        """Budget/update counters for result export."""
        return {
            "budget_bytes": self.throttle.budget_bytes,
            "updates": self.throttle.updates,
            "last_active_count": self.throttle.last_active_count,
            "last_share_bytes": self.throttle.current_share_bytes(),
        }


class IctcpScheme(MitigationScheme):
    """Receiver-window throttling (ICTCP, Wu et al.)."""

    name = "ictcp"
    provenance = "ICTCP (Wu et al., CoNEXT 2010)"
    target_mode = ("Mode 2 (degenerate): hold aggregate in-flight inside "
                   "the healthy budget — 1-MSS floor binds at K*")
    summary = ("receiver divides a Mode-1 byte budget across active "
               "connections via the advertised window")
    default_params = {
        "budget_bytes": None,  # None = ECN threshold + BDP
        "period_ns": units.usec(100.0),
    }

    def check_params(self, merged: dict) -> None:
        """Reject out-of-range knob values."""
        budget = merged["budget_bytes"]
        if budget is not None and budget <= 0:
            raise ValueError("budget_bytes must be positive")
        if merged["period_ns"] <= 0:
            raise ValueError("period_ns must be positive")

    def install(self, ctx: SchemeContext, params: dict) -> SchemeRuntime:
        """Start the destination-side throttle."""
        return _IctcpRuntime(ctx, self.validate_params(params))
