"""Registry wiring for the FEC shim (mechanism in :mod:`repro.tcp.fec`).

Attaches a :class:`repro.tcp.fec.FecEncoder` to every sender and a
:class:`repro.tcp.fec.FecDecoder` to every receiver, sharing one
:class:`repro.tcp.fec.FecStats` per connection so the verdict campaign
can report repair overhead against recovered losses.
"""

from __future__ import annotations

from repro.tcp.connection import TcpReceiver, TcpSender
from repro.tcp.fec import FecConfig, FecDecoder, FecEncoder, FecStats
from repro.tcp.schemes.base import (MitigationScheme, SchemeContext,
                                    SchemeRuntime)


class _FecRuntime(SchemeRuntime):
    """Per-run FEC wiring: one encoder/decoder pair per connection."""

    def __init__(self, ctx: SchemeContext, params: dict):
        self._config = FecConfig(k_segments=params["k_segments"],
                                 mss_bytes=ctx.tcp.mss_bytes)
        self._stats: list[FecStats] = []

    def on_connection(self, sender: TcpSender,
                      receiver: TcpReceiver) -> None:
        """Attach the shim to both halves of one connection."""
        stats = FecStats()
        self._stats.append(stats)
        sender.fec = FecEncoder(sender, self._config, stats)
        receiver.fec = FecDecoder(receiver, self._config, stats)

    def finish(self, burst_starts_ns=None, burst_duration_ns=None) -> dict:
        """Aggregate repair/recovery counters across connections."""
        total = FecStats()
        for stats in self._stats:
            total.add(stats)
        out = total.to_dict()
        out["k_segments"] = self._config.k_segments
        return out


class FecScheme(MitigationScheme):
    """Proactive redundancy so short-flow losses recover without RTO."""

    name = "fec"
    provenance = ("Optimizing Tail Latency using Forward Error "
                  "Correction (see PAPERS.md)")
    target_mode = ("Mode 3 (timeout): convert catastrophic-retransmit "
                   "tail losses into in-band recoveries")
    summary = ("one repair packet per k data segments; receiver fills "
               "single-loss holes without waiting for RTO")
    default_params = {"k_segments": 8}

    def check_params(self, merged: dict) -> None:
        """Reject a non-positive code-rate denominator."""
        if merged["k_segments"] < 1:
            raise ValueError("k_segments must be >= 1")

    def install(self, ctx: SchemeContext, params: dict) -> SchemeRuntime:
        """Build the per-run encoder/decoder factory."""
        return _FecRuntime(ctx, self.validate_params(params))
