"""Online switch-side incast burst detection.

Per *Distributed Incast Detection*: a switch can recognize an incast
forming from its own queue telemetry alone — occupancy crossing a
watermark — without host cooperation. This scheme runs that detector live
inside the simulation:

- a :class:`repro.measurement.watermark.WatermarkChannelProbe` publishes
  the bottleneck queue's occupancy on the ``queue.watermark`` hook
  channel every ``period_ns``;
- a :class:`BurstDetector` subscribes to the channel and fires on a
  threshold crossing with hysteresis (armed again only after occupancy
  falls back to ``clear_packets``);
- after the run, detections are scored against the workload's
  ground-truth burst starts (:mod:`repro.analysis.detection`) —
  detection latency, precision, and recall become first-class analysis
  output in the verdict table.

The scheme is *measurement-only*: it never touches sender windows, so
its FCT/BCT columns double as a sanity baseline for the probe overhead
(none — hook emission is observer-gated and the probe reads occupancy
without resetting any register).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.analysis.detection import evaluate_detections
from repro.measurement.watermark import (WATERMARK_CHANNEL,
                                         WatermarkChannelProbe)
from repro.simcore.kernel import Simulator
from repro.tcp.schemes.base import (MitigationScheme, SchemeContext,
                                    SchemeRuntime)


class BurstDetector:
    """Threshold-with-hysteresis detector on the watermark channel.

    Fires (records a detection time) when a sample reaches
    ``threshold_packets`` while armed; re-arms only after a sample at or
    below ``clear_packets``, so one sustained burst yields one detection.
    """

    def __init__(self, sim: Simulator, queue_name: str,
                 threshold_packets: int,
                 clear_packets: Optional[int] = None):
        if threshold_packets <= 0:
            raise ValueError("threshold_packets must be positive")
        self._queue_name = queue_name
        self.threshold_packets = threshold_packets
        self.clear_packets = (clear_packets if clear_packets is not None
                              else threshold_packets // 2)
        self.detections_ns: list[int] = []
        self.samples_seen = 0
        self._armed = True
        self._sim = sim
        sim.hooks.subscribe(WATERMARK_CHANNEL, self._on_sample)

    def _on_sample(self, queue_name: str, depth: int, t_ns: int) -> None:
        if queue_name != self._queue_name:
            return
        self.samples_seen += 1
        if self._armed:
            if depth >= self.threshold_packets:
                self._armed = False
                self.detections_ns.append(t_ns)
        elif depth <= self.clear_packets:
            self._armed = True

    def detach(self) -> None:
        """Unsubscribe from the watermark channel."""
        self._sim.hooks.unsubscribe(WATERMARK_CHANNEL, self._on_sample)


class _DetectRuntime(SchemeRuntime):
    """Live wiring: probe publishing samples, detector consuming them."""

    def __init__(self, ctx: SchemeContext, params: dict):
        threshold = params["threshold_packets"]
        if threshold is None:
            # Default to the marking threshold: detect at the point where
            # the switch itself starts signalling congestion.
            threshold = max(1, ctx.ecn_threshold_packets)
        self._match_window_ns = params["match_window_ns"]
        self.detector = BurstDetector(ctx.sim, ctx.bottleneck_queue.name,
                                      threshold_packets=threshold)
        self.probe = WatermarkChannelProbe(ctx.sim, ctx.bottleneck_queue,
                                           period_ns=params["period_ns"])
        self.probe.start()

    def stop(self) -> None:
        """Stop the probe so the simulation drains."""
        self.probe.stop()

    def finish(self, burst_starts_ns=None, burst_duration_ns=None) -> dict:
        """Detection stats, scored against ground truth when available."""
        self.probe.stop()
        self.detector.detach()
        out = {
            "threshold_packets": self.detector.threshold_packets,
            "samples": self.detector.samples_seen,
            "detections": len(self.detector.detections_ns),
        }
        if burst_starts_ns:
            window = self._match_window_ns
            if window is None:
                window = (burst_duration_ns if burst_duration_ns
                          else units.msec(15.0))
            out.update(evaluate_detections(
                self.detector.detections_ns, list(burst_starts_ns),
                match_window_ns=int(window)))
        return out


class DetectScheme(MitigationScheme):
    """Online burst detection on the queue-watermark channel."""

    name = "detect"
    provenance = "Distributed Incast Detection (see PAPERS.md)"
    target_mode = ("observability: locate the Mode 1->2 boundary online, "
                   "no window changes")
    summary = ("switch-local watermark sampling + hysteresis detector; "
               "exports detection latency/precision/recall")
    default_params = {
        "threshold_packets": None,  # None = the bottleneck ECN threshold
        "period_ns": units.usec(50.0),
        "match_window_ns": None,    # None = the workload burst duration
    }

    def check_params(self, merged: dict) -> None:
        """Reject out-of-range knob values."""
        threshold = merged["threshold_packets"]
        if threshold is not None and threshold <= 0:
            raise ValueError("threshold_packets must be positive")
        if merged["period_ns"] <= 0:
            raise ValueError("period_ns must be positive")
        window = merged["match_window_ns"]
        if window is not None and window <= 0:
            raise ValueError("match_window_ns must be positive")

    def install(self, ctx: SchemeContext, params: dict) -> SchemeRuntime:
        """Start the probe and arm the detector."""
        return _DetectRuntime(ctx, self.validate_params(params))
