"""ICTCP-like receiver-window incast throttling.

ICTCP (Wu et al., CoNEXT 2010) is one of the prior approaches the paper
surveys: the *receiver* adjusts each connection's advertised window so the
aggregate stays within what its access link can absorb. This module
implements that idea's essential mechanism so the repository can compare it
quantitatively against DCTCP alone and against sender-side guardrails:

- the controller owns a byte *budget* (defaulting to the healthy Mode 1
  region, the ECN threshold plus the path BDP);
- periodically, it counts connections that made delivery progress during
  the last period and divides the budget evenly across them;
- each active connection's advertised window is set to that share, and
  idle connections are parked at one MSS.

Crucially, the advertised window cannot fall below one MSS — the same
floor that creates DCTCP's degenerate point. Ablation M shows the
consequence: receiver-window throttling behaves like the guardrail at
moderate incast degrees and stops helping at exactly the same flow count,
supporting the paper's observation that the O(50)-flow designs (ICTCP
among them) do not reach today's hundreds-of-flows incasts.
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.simcore.kernel import Simulator
from repro.tcp.connection import TcpReceiver


class ReceiverWindowThrottle:
    """Divides a receive-budget across currently-active connections.

    Args:
        sim: The simulator to schedule updates on.
        receivers: All connections terminating at the throttled host.
        budget_bytes: Aggregate in-flight budget to divide.
        period_ns: Update period (ICTCP uses a couple of RTTs).
        mss_bytes: Per-connection window floor.
    """

    def __init__(self, sim: Simulator, receivers: list[TcpReceiver],
                 budget_bytes: int, period_ns: int = units.usec(100.0),
                 mss_bytes: int = 1460):
        if budget_bytes <= 0:
            raise ValueError("budget must be positive")
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._receivers = receivers
        self.budget_bytes = budget_bytes
        self.period_ns = period_ns
        self.mss_bytes = mss_bytes
        self._last_delivered = [r.delivered_bytes for r in receivers]
        self._running = False
        self.updates = 0
        self.last_active_count = 0

    def start(self) -> None:
        """Begin periodic window updates; all connections start at an even
        share of the budget."""
        if self._running:
            return
        self._running = True
        self._apply(self._receivers)
        self._sim.schedule(self.period_ns, self._tick)

    def add_connection(self, receiver: TcpReceiver) -> None:
        """Register a connection that opened after construction.

        The newcomer immediately gets the current active share (it is
        about to transfer, so parking it at one MSS would just delay the
        inevitable re-division at the next tick).
        """
        self._receivers.append(receiver)
        self._last_delivered.append(receiver.delivered_bytes)
        if self._running:
            share = self.current_share_bytes()
            receiver.advertised_window_bytes = (share if share is not None
                                                else self.mss_bytes)

    def stop(self) -> None:
        """Stop updating and lift the advertised-window limits."""
        self._running = False
        for receiver in self._receivers:
            receiver.advertised_window_bytes = None

    def _tick(self) -> None:
        if not self._running:
            return
        active = []
        for index, receiver in enumerate(self._receivers):
            delivered = receiver.delivered_bytes
            if delivered > self._last_delivered[index]:
                active.append(receiver)
            self._last_delivered[index] = delivered
        self._apply(active if active else self._receivers)
        self._sim.schedule(self.period_ns, self._tick)

    def _apply(self, active: list[TcpReceiver]) -> None:
        self.updates += 1
        self.last_active_count = len(active)
        share = max(self.mss_bytes, self.budget_bytes // max(len(active), 1))
        active_set = set(id(r) for r in active)
        for receiver in self._receivers:
            if id(receiver) in active_set:
                receiver.advertised_window_bytes = share
            else:
                # Parked connections may trickle at one segment.
                receiver.advertised_window_bytes = self.mss_bytes

    def current_share_bytes(self) -> Optional[int]:
        """The per-connection window most recently applied to active
        connections (None before :meth:`start`)."""
        if self.updates == 0:
            return None
        return max(self.mss_bytes,
                   self.budget_bytes // max(self.last_active_count, 1))
