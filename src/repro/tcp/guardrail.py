"""CWND guardrails driven by predicted incast degree (Section 5.1).

The paper's measurement study shows per-service incast degree is stable and
therefore predictable (Section 3.3), and its discussion proposes "simple
guardrails that prevent TCP from ramping up excessively during incast".
This module implements that design direction:

- :func:`guardrail_cap_bytes` computes the largest per-flow window that
  keeps the aggregate in-flight data of a K-flow incast at or below the ECN
  marking threshold plus the BDP (the healthy Mode-1 operating region).
- :class:`CwndGuardrail` wraps any CCA and clamps its *effective* window to
  that cap, leaving the inner algorithm's dynamics (and its responsiveness
  to genuine bandwidth changes) untouched.

Ablation B in :mod:`repro.experiments.ablations` measures the effect.
"""

from __future__ import annotations

from typing import Optional

from repro.netsim.packet import TCP_IP_HEADER_BYTES
from repro.tcp.cca.base import CongestionControl


def guardrail_cap_bytes(flow_count: int, ecn_threshold_packets: int,
                        bdp_bytes: int, mss_bytes: int,
                        headroom: float = 1.0) -> int:
    """Per-flow CWND cap that keeps a ``flow_count``-strong incast healthy.

    The budget of in-flight bytes the bottleneck tolerates before sustained
    marking is ``ecn_threshold_packets`` full segments of queue plus the
    path BDP; dividing it across flows gives the fair per-flow window. The
    result is floored at one MSS — below K* flows the floor binds and the
    guardrail cannot help (the degenerate point, Section 4.1.2).

    Args:
        flow_count: Predicted incast degree (e.g. a service's p99).
        ecn_threshold_packets: Switch marking threshold, in packets.
        bdp_bytes: Bandwidth-delay product of the bottleneck path.
        mss_bytes: Segment size.
        headroom: Multiplier on the budget (>1 trades latency for ramp-up).
    """
    if flow_count <= 0:
        raise ValueError(f"flow_count must be positive, got {flow_count}")
    wire_packet = mss_bytes + TCP_IP_HEADER_BYTES
    budget = ecn_threshold_packets * wire_packet + bdp_bytes
    return max(mss_bytes, int(headroom * budget / flow_count))


class CwndGuardrail(CongestionControl):
    """Clamp a wrapped CCA's effective window to a fixed cap.

    All congestion events pass through to the inner algorithm; only the
    window the sender *enforces* is clamped. The inner CCA therefore keeps
    learning (alpha keeps updating for DCTCP) and regains full freedom the
    moment the cap is lifted via :attr:`cap_bytes`.
    """

    name = "guardrail"

    def __init__(self, inner: CongestionControl, cap_bytes: int):
        if cap_bytes < inner.config.mss_bytes:
            raise ValueError("cap must be at least one MSS")
        self._inner = inner
        self.cap_bytes = cap_bytes
        super().__init__(inner.config)

    # The wrapped CCA owns the real window state; expose it transparently.

    @property
    def cwnd_bytes(self) -> float:  # type: ignore[override]
        """The inner algorithm's congestion window."""
        return self._inner.cwnd_bytes

    @cwnd_bytes.setter
    def cwnd_bytes(self, value: float) -> None:
        """Write through to the inner algorithm's window."""
        self._inner.cwnd_bytes = value

    @property
    def ssthresh_bytes(self) -> float:  # type: ignore[override]
        """The inner algorithm's slow-start threshold."""
        return self._inner.ssthresh_bytes

    @ssthresh_bytes.setter
    def ssthresh_bytes(self, value: float) -> None:
        """Write through to the inner algorithm's threshold."""
        self._inner.ssthresh_bytes = value

    @property
    def inner(self) -> CongestionControl:
        """The wrapped algorithm."""
        return self._inner

    def effective_cwnd_bytes(self) -> float:
        """The inner window, clamped to the guardrail cap."""
        capped = min(self._inner.effective_cwnd_bytes(),
                     float(max(self.cap_bytes, self.mss)))
        return capped

    def pacing_interval_ns(self, srtt_ns: Optional[float]) -> Optional[int]:
        """Delegate pacing to the inner algorithm."""
        return self._inner.pacing_interval_ns(srtt_ns)

    def on_ack(self, bytes_acked: int, ece: bool, snd_una: int, snd_nxt: int,
               now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_ack(bytes_acked, ece, snd_una, snd_nxt, now_ns)

    def on_loss(self, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_loss(now_ns)

    def on_rto(self, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_rto(now_ns)

    def on_rtt_sample(self, rtt_ns: int, now_ns: int) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_rtt_sample(rtt_ns, now_ns)

    def on_restart_after_idle(self) -> None:
        """Delegate to the inner algorithm."""
        self._inner.on_restart_after_idle()

    def __repr__(self) -> str:
        return f"CwndGuardrail(cap={self.cap_bytes}B, inner={self._inner!r})"
