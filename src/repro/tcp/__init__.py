"""TCP transport with pluggable congestion control.

Implements the endpoint behaviour the paper's Section 4 diagnosis depends
on: a window-based sender (slow start, congestion avoidance, triple-dupACK
fast retransmit with NewReno partial-ACK handling, RTO with exponential
backoff and a 1-MSS minimum window) and a receiver that reflects ECN CE
marks back via the TCP ECE bit (the DCTCP receiver rule).

Congestion-control algorithms live in :mod:`repro.tcp.cca`:
:class:`~repro.tcp.cca.reno.Reno` (classic ECN TCP baseline),
:class:`~repro.tcp.cca.dctcp.Dctcp` (the paper's subject), and
:class:`~repro.tcp.cca.swiftlike.SwiftLike` (delay-based with sub-MSS pacing,
the Section 5.2 alternative). :mod:`repro.tcp.guardrail` adds the Section 5.1
"guardrail" CWND cap driven by predicted incast degree.
"""

from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpReceiver, TcpSender, open_connection
from repro.tcp.rtt import RttEstimator
from repro.tcp.cca.base import CongestionControl
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.cca.reno import Reno
from repro.tcp.cca.swiftlike import SwiftLike
from repro.tcp.guardrail import CwndGuardrail, guardrail_cap_bytes
from repro.tcp.ictcp import ReceiverWindowThrottle
from repro.tcp.sack import SackScoreboard

__all__ = [
    "TcpConfig",
    "TcpSender",
    "TcpReceiver",
    "open_connection",
    "RttEstimator",
    "CongestionControl",
    "Reno",
    "Dctcp",
    "SwiftLike",
    "CwndGuardrail",
    "guardrail_cap_bytes",
    "ReceiverWindowThrottle",
    "SackScoreboard",
]
