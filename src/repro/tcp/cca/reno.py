"""TCP Reno/NewReno with classic ECN (RFC 3168) response.

The baseline window-based CCA: slow start and AIMD congestion avoidance,
halving on loss. With ECN enabled it also halves (once per window) when an
ACK carries the ECE flag — the coarse on/off reaction that DCTCP's
proportional backoff was designed to improve upon.
"""

from __future__ import annotations

from repro.tcp.cca.base import CongestionControl
from repro.tcp.config import TcpConfig


class Reno(CongestionControl):
    """Classic AIMD congestion control."""

    name = "reno"

    def __init__(self, config: TcpConfig, react_to_ecn: bool = True):
        super().__init__(config)
        self._react_to_ecn = react_to_ecn and config.ecn_enabled
        # Sequence up to which an ECN-triggered reduction already applies;
        # implements "at most one halving per window of data" (RFC 3168).
        self._cwr_end_seq = 0

    def on_ack(self, bytes_acked: int, ece: bool, snd_una: int, snd_nxt: int,
               now_ns: int) -> None:
        """Halve once per window on ECE (RFC 3168 CWR); otherwise grow
        Reno-style."""
        if ece and self._react_to_ecn:
            if snd_una > self._cwr_end_seq:
                self._multiplicative_decrease()
                self._cwr_end_seq = snd_nxt
            return  # no growth on ECE-marked ACKs (CWR)
        if bytes_acked > 0:
            self._grow_reno(bytes_acked)

    def on_loss(self, now_ns: int) -> None:
        """Halve the window (fast-recovery response)."""
        self._multiplicative_decrease()

    def on_rto(self, now_ns: int) -> None:
        """Collapse to one MSS after a retransmission timeout."""
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, 2.0 * self.mss)
        self.cwnd_bytes = float(self.mss)

    def _multiplicative_decrease(self) -> None:
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, float(self.mss))
        self.cwnd_bytes = self.ssthresh_bytes
