"""Congestion-control algorithms.

All CCAs implement :class:`repro.tcp.cca.base.CongestionControl`. The sender
owns reliability (retransmits, timers); the CCA owns only the congestion
window and its reaction to ACKs, ECN echoes, losses, and timeouts.
"""

from repro.tcp.cca.base import CongestionControl
from repro.tcp.cca.dctcp import Dctcp
from repro.tcp.cca.reno import Reno
from repro.tcp.cca.swiftlike import SwiftLike

__all__ = ["CongestionControl", "Reno", "Dctcp", "SwiftLike"]
