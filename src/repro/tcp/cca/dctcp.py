"""Data Center TCP (DCTCP), the paper's subject CCA.

Implements the algorithm of Alizadeh et al. (SIGCOMM 2010) as deployed in
the Linux kernel and at Meta:

- The receiver echoes each packet's CE mark via the TCP ECE bit (with
  delayed ACKs disabled, per-packet; the receiver logic lives in
  :mod:`repro.tcp.connection`).
- The sender maintains ``alpha``, an EWMA of the fraction of acknowledged
  bytes that were marked, updated once per window of data with gain ``g``:
  ``alpha <- (1 - g) * alpha + g * F``.
- On the first ECE in a window the sender cuts multiplicatively but
  *proportionally to alpha*: ``cwnd <- cwnd * (1 - alpha / 2)``, at most
  once per window.
- Growth between marks, and reactions to loss and timeout, follow Reno.

The paper sets ``g = 1/16`` (from Equation 15 of the DCTCP paper). The
1-MSS window floor applied by the sender is what creates the "degenerate
point": with K flows, total in-flight data cannot drop below K segments, so
once K exceeds the marking threshold plus the BDP (in segments), the queue
can never drain below the threshold (Section 4.1.2).
"""

from __future__ import annotations

from repro.tcp.cca.base import CongestionControl
from repro.tcp.config import TcpConfig

DEFAULT_G = 1.0 / 16.0
"""The paper's alpha estimation gain."""


class Dctcp(CongestionControl):
    """DCTCP sender-side congestion control.

    Attributes:
        g: EWMA gain for the alpha estimator.
        alpha: Current estimate of the marked fraction (0..1).
    """

    name = "dctcp"

    def __init__(self, config: TcpConfig, g: float = DEFAULT_G,
                 initial_alpha: float = 1.0):
        if not 0.0 < g <= 1.0:
            raise ValueError(f"g must be in (0, 1], got {g}")
        if not 0.0 <= initial_alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {initial_alpha}")
        super().__init__(config)
        self.g = g
        self.alpha = initial_alpha
        self._acked_bytes_win = 0
        self._marked_bytes_win = 0
        self._window_end_seq = 0
        # Sequence up to which a window reduction already applies (CWR):
        # at most one proportional cut per window of data, and no growth
        # until that window has drained.
        self._cwr_end_seq = 0
        self.windows_completed = 0

    def on_ack(self, bytes_acked: int, ece: bool, snd_una: int, snd_nxt: int,
               now_ns: int) -> None:
        """Track marks, apply at most one proportional cut per window,
        grow Reno-style on unmarked ACKs, and close alpha windows."""
        self._acked_bytes_win += bytes_acked
        if ece:
            self._marked_bytes_win += bytes_acked
            if snd_una > self._cwr_end_seq:
                self._proportional_decrease()
                self._cwr_end_seq = snd_nxt
        elif bytes_acked > 0 and snd_una > self._cwr_end_seq:
            self._grow_reno(bytes_acked)
        if snd_una >= self._window_end_seq:
            self._end_window(snd_nxt)

    def _proportional_decrease(self) -> None:
        self.cwnd_bytes = max(float(self.mss),
                              self.cwnd_bytes * (1.0 - self.alpha / 2.0))
        self.ssthresh_bytes = self.cwnd_bytes

    def _end_window(self, snd_nxt: int) -> None:
        if self._acked_bytes_win > 0:
            fraction = self._marked_bytes_win / self._acked_bytes_win
            self.alpha = (1.0 - self.g) * self.alpha + self.g * fraction
            self.windows_completed += 1
        self._acked_bytes_win = 0
        self._marked_bytes_win = 0
        self._window_end_seq = snd_nxt

    def on_loss(self, now_ns: int) -> None:
        """Halve the window (standard TCP loss response)."""
        # DCTCP falls back to standard TCP behaviour on packet loss.
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, float(self.mss))
        self.cwnd_bytes = self.ssthresh_bytes

    def on_rto(self, now_ns: int) -> None:
        """Collapse to one MSS after a retransmission timeout."""
        self.ssthresh_bytes = max(self.cwnd_bytes / 2.0, 2.0 * self.mss)
        self.cwnd_bytes = float(self.mss)

    def __repr__(self) -> str:
        return (f"Dctcp(cwnd={self.cwnd_bytes:.0f}B, alpha={self.alpha:.3f}, "
                f"g={self.g:g})")
