"""The congestion-control interface.

A :class:`CongestionControl` instance belongs to exactly one sender. The
sender reports protocol events; the CCA exposes the congestion window (and,
for paced algorithms, an inter-packet gap). Window units are bytes; the
window may be fractional internally but is floored at one MSS for
window-mode senders — the "degenerate point" floor whose consequences
Section 4.1 of the paper analyzes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.tcp.config import TcpConfig

SSTHRESH_INFINITE = float("inf")


class CongestionControl(ABC):
    """Base class for congestion-control algorithms.

    Attributes:
        config: The owning connection's TCP configuration.
        cwnd_bytes: Current congestion window (bytes, float).
        ssthresh_bytes: Slow-start threshold (bytes).
    """

    #: Human-readable algorithm name, overridden by subclasses.
    name = "base"

    def __init__(self, config: TcpConfig):
        self.config = config
        self.cwnd_bytes: float = float(config.init_cwnd_bytes)
        self.ssthresh_bytes: float = SSTHRESH_INFINITE

    # --- queries ---------------------------------------------------------

    @property
    def mss(self) -> int:
        """Maximum segment size in bytes."""
        return self.config.mss_bytes

    @property
    def in_slow_start(self) -> bool:
        """Whether the window is below the slow-start threshold."""
        return self.cwnd_bytes < self.ssthresh_bytes

    def effective_cwnd_bytes(self) -> float:
        """The window the sender enforces: floored at one MSS (senders
        cannot back off below a single segment in window mode) and capped
        by any configured maximum."""
        cwnd = max(self.cwnd_bytes, float(self.mss))
        if self.config.max_cwnd_bytes is not None:
            cwnd = min(cwnd, float(self.config.max_cwnd_bytes))
        return cwnd

    def pacing_interval_ns(self, srtt_ns: Optional[float]) -> Optional[int]:
        """Inter-packet send gap for paced operation, or ``None`` to use
        pure window-mode sending. Window-based CCAs return ``None``."""
        return None

    # --- event handlers ----------------------------------------------------

    @abstractmethod
    def on_ack(self, bytes_acked: int, ece: bool, snd_una: int, snd_nxt: int,
               now_ns: int) -> None:
        """A cumulative ACK advanced ``snd_una`` by ``bytes_acked`` (0 for a
        duplicate ACK) with the TCP ECE flag set to ``ece``."""

    @abstractmethod
    def on_loss(self, now_ns: int) -> None:
        """Fast retransmit fired (entering loss recovery)."""

    @abstractmethod
    def on_rto(self, now_ns: int) -> None:
        """The retransmission timer expired."""

    def on_rtt_sample(self, rtt_ns: int, now_ns: int) -> None:
        """A fresh RTT measurement (delay-based CCAs override)."""

    def on_restart_after_idle(self) -> None:
        """Connection resumed after an idle period longer than the restart
        threshold and window validation is enabled
        (:attr:`TcpConfig.cwnd_restart_after_idle`). Per RFC 2861 the
        restart window is ``min(init_cwnd, cwnd)`` — restarting never
        *grows* the window."""
        self.cwnd_bytes = min(self.cwnd_bytes,
                              float(self.config.init_cwnd_bytes))

    # --- shared helpers ----------------------------------------------------

    def _grow_reno(self, bytes_acked: int) -> None:
        """Standard Reno growth: exponential in slow start, ~1 MSS per RTT
        in congestion avoidance."""
        if self.in_slow_start:
            self.cwnd_bytes += bytes_acked
        else:
            self.cwnd_bytes += self.mss * bytes_acked / self.cwnd_bytes
        if self.config.max_cwnd_bytes is not None:
            self.cwnd_bytes = min(self.cwnd_bytes,
                                  float(self.config.max_cwnd_bytes))

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(cwnd={self.cwnd_bytes:.0f}B, "
                f"ssthresh={self.ssthresh_bytes})")
