"""A Swift-like delay-based CCA with sub-MSS pacing.

Section 5.2 of the paper discusses Swift (Kumar et al., SIGCOMM 2020) as the
alternative that scales to O(10k)-flow incasts by letting the congestion
window drop *below* one packet: a flow with cwnd = 0.1 MSS sends one packet
every 10 RTTs, paced. This module implements the essential mechanism so the
repository can reproduce that discussion quantitatively (ablation E):

- target-delay congestion control: additive increase while the measured RTT
  is below the target, multiplicative decrease proportional to the excess
  when above (at most once per RTT);
- a fractional window floored at ``min_cwnd_fraction`` MSS instead of 1 MSS;
- when the window is below one MSS, the sender switches to pacing mode and
  sends a single packet every ``mss / cwnd`` RTTs.

It is deliberately "Swift-like", not Swift: no fabric-vs-endpoint delay
split, no flow scaling term. Those refinements do not change the property
under study (escape from the 1-MSS degenerate point).
"""

from __future__ import annotations

from typing import Optional

from repro import units
from repro.tcp.cca.base import CongestionControl
from repro.tcp.config import TcpConfig


class SwiftLike(CongestionControl):
    """Delay-target CCA with a fractional congestion window.

    Attributes:
        target_delay_ns: End-to-end RTT target.
        additive_increase_bytes: Per-RTT additive increase.
        beta: Multiplicative-decrease sensitivity to delay excess.
        max_mdf: Maximum fractional decrease per decision.
        min_cwnd_fraction: Window floor as a fraction of one MSS.
    """

    name = "swiftlike"

    def __init__(self, config: TcpConfig,
                 target_delay_ns: int = units.usec(60.0),
                 additive_increase_bytes: Optional[float] = None,
                 beta: float = 0.8,
                 max_mdf: float = 0.5,
                 min_cwnd_fraction: float = 0.01):
        if target_delay_ns <= 0:
            raise ValueError("target_delay_ns must be positive")
        if not 0.0 < max_mdf < 1.0:
            raise ValueError("max_mdf must be in (0, 1)")
        if not 0.0 < min_cwnd_fraction <= 1.0:
            raise ValueError("min_cwnd_fraction must be in (0, 1]")
        super().__init__(config)
        self.target_delay_ns = target_delay_ns
        self.additive_increase_bytes = (
            0.5 * config.mss_bytes if additive_increase_bytes is None
            else additive_increase_bytes)
        self.beta = beta
        self.max_mdf = max_mdf
        self.min_cwnd_fraction = min_cwnd_fraction
        self._last_rtt_ns: Optional[int] = None
        self._last_decrease_ns: Optional[int] = None

    # --- fractional-window support -----------------------------------------

    def effective_cwnd_bytes(self) -> float:
        """Unlike window-based CCAs, the floor is a *fraction* of one MSS."""
        floor = self.min_cwnd_fraction * self.mss
        cwnd = max(self.cwnd_bytes, floor)
        if self.config.max_cwnd_bytes is not None:
            cwnd = min(cwnd, float(self.config.max_cwnd_bytes))
        return cwnd

    def pacing_interval_ns(self, srtt_ns: Optional[float]) -> Optional[int]:
        """When cwnd < 1 MSS, send one packet every ``mss/cwnd`` RTTs."""
        cwnd = self.effective_cwnd_bytes()
        if cwnd >= self.mss or srtt_ns is None:
            return None
        return int(srtt_ns * self.mss / cwnd)

    # --- events -------------------------------------------------------------

    def on_rtt_sample(self, rtt_ns: int, now_ns: int) -> None:
        """Remember the latest RTT (the delay signal on_ack reacts to)."""
        self._last_rtt_ns = rtt_ns

    def on_ack(self, bytes_acked: int, ece: bool, snd_una: int, snd_nxt: int,
               now_ns: int) -> None:
        """Additive increase below the target delay, rate-limited
        multiplicative decrease above it."""
        if bytes_acked <= 0 or self._last_rtt_ns is None:
            return
        rtt = self._last_rtt_ns
        if rtt < self.target_delay_ns:
            cwnd = max(self.cwnd_bytes, self.min_cwnd_fraction * self.mss)
            if cwnd >= self.mss:
                # Normalized additive increase: ~additive_increase_bytes
                # per RTT regardless of window size.
                self.cwnd_bytes = cwnd + (self.additive_increase_bytes
                                          * bytes_acked / cwnd)
            else:
                # Below one packet, Swift grows *linearly* per acked packet
                # (cwnd = cwnd + ai * num_acked); the normalized rule would
                # explode the window off a single ACK at tiny cwnd.
                self.cwnd_bytes = cwnd + (self.additive_increase_bytes
                                          * bytes_acked / self.mss)
        elif self._can_decrease(now_ns, rtt):
            excess = (rtt - self.target_delay_ns) / rtt
            factor = 1.0 - min(self.beta * excess, self.max_mdf)
            self.cwnd_bytes = max(self.cwnd_bytes * factor,
                                  self.min_cwnd_fraction * self.mss)
            self._last_decrease_ns = now_ns
        if self.config.max_cwnd_bytes is not None:
            self.cwnd_bytes = min(self.cwnd_bytes,
                                  float(self.config.max_cwnd_bytes))

    def _can_decrease(self, now_ns: int, rtt_ns: int) -> bool:
        return (self._last_decrease_ns is None
                or now_ns - self._last_decrease_ns >= rtt_ns)

    def on_loss(self, now_ns: int) -> None:
        """Cut by the maximum decrease factor on packet loss."""
        self.cwnd_bytes = max(self.cwnd_bytes * (1.0 - self.max_mdf),
                              self.min_cwnd_fraction * self.mss)

    def on_rto(self, now_ns: int) -> None:
        """Collapse to the minimum window after a timeout."""
        self.cwnd_bytes = self.min_cwnd_fraction * self.mss
