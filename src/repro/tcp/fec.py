"""Forward-error-correction shim for short flows.

Models the proactive-redundancy mitigation of *Optimizing Tail Latency
using Forward Error Correction*: senders emit one systematic repair packet
per block of ``k`` data segments (plus one at each demand edge, so a
burst's tail — the segments whose losses otherwise only an RTO can
recover — is always covered). A repair packet carries enough redundancy to
reconstruct one lost segment of its block; when it arrives at a receiver
that is missing at most that much of the block, the hole is filled without
waiting for retransmission.

The encoding itself is not simulated — what matters for the congestion
story is (a) the extra wire load repairs impose on the bottleneck and
(b) which losses become recoverable without RTO. Repair packets are real
:class:`~repro.netsim.packet.Packet` objects traversing the real queue
(they can be dropped or CE-marked like any other segment), sent outside
the congestion window: the redundancy budget is the scheme's cost, and the
verdict campaign charges it.

Wiring: a mitigation scheme attaches a :class:`FecEncoder` as
``TcpSender.fec`` (tapped from ``_emit_segment`` for every fresh segment)
and a :class:`FecDecoder` as ``TcpReceiver.fec`` (repair packets — those
with a ``fec_block`` range — divert to it in ``handle_packet``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.packet import DEFAULT_MSS, ECN, Packet


@dataclass(frozen=True)
class FecConfig:
    """Knobs of the FEC shim.

    Attributes:
        k_segments: Data segments covered per repair packet (the code
            rate is ``k/(k+1)``). Smaller is more redundant.
        mss_bytes: Segment size; one repair recovers at most this many
            missing bytes of its block.
    """

    k_segments: int = 8
    mss_bytes: int = DEFAULT_MSS

    def __post_init__(self) -> None:
        if self.k_segments <= 0:
            raise ValueError("k_segments must be positive")
        if self.mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")

    @property
    def block_bytes(self) -> int:
        """Bytes of fresh data per full block."""
        return self.k_segments * self.mss_bytes


class FecStats:
    """Counters shared by one connection's encoder/decoder pair."""

    __slots__ = ("repair_packets_sent", "repair_bytes_sent",
                 "repairs_received", "blocks_recovered", "recovered_bytes",
                 "repairs_wasted", "repairs_insufficient")

    def __init__(self) -> None:
        self.repair_packets_sent = 0
        self.repair_bytes_sent = 0
        self.repairs_received = 0
        self.blocks_recovered = 0
        self.recovered_bytes = 0
        self.repairs_wasted = 0
        self.repairs_insufficient = 0

    def to_dict(self) -> dict:
        """Counters as a plain dict (for scheme-stats export)."""
        return {name: getattr(self, name) for name in self.__slots__}

    def add(self, other: "FecStats") -> None:
        """Accumulate ``other`` into this instance (per-run aggregation)."""
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class FecEncoder:
    """Sender-side shim emitting one repair packet per block.

    Attach as ``sender.fec``; :meth:`on_segment_sent` is then invoked for
    every fresh (non-retransmitted) segment. Repairs bypass the congestion
    window — they are injected straight at the NIC, which is exactly the
    modeled cost of proactive redundancy.
    """

    def __init__(self, sender, config: FecConfig, stats: FecStats):
        self._config = config
        self.stats = stats
        self._sender = sender
        self._nic = sender._nic
        self._src = sender._host.address
        self._dst = sender._dst
        self._flow_id = sender.flow_id
        self._ecn_capable = sender.config.ecn_enabled
        self._block_start = 0
        self._high = 0

    def on_segment_sent(self, seq: int, payload: int, now: int) -> None:
        """Account a fresh segment; emit repairs at block/demand edges."""
        end = seq + payload
        if end <= self._high:
            return
        self._high = end
        block = self._config.block_bytes
        while self._high - self._block_start >= block:
            self._emit_repair(self._block_start, self._block_start + block,
                              now)
            self._block_start += block
        if self._high >= self._sender.demand_end:
            self.flush(now)

    def flush(self, now: int) -> None:
        """Emit a repair for the current partial block, if any (demand
        edges: a burst's tail segments must not go unprotected)."""
        if self._high > self._block_start:
            self._emit_repair(self._block_start, self._high, now)
            self._block_start = self._high

    def _emit_repair(self, start: int, end: int, now: int) -> None:
        payload = min(self._config.mss_bytes, end - start)
        packet = Packet(self._flow_id, self._src, self._dst, seq=start,
                        payload_bytes=payload,
                        ecn=ECN.ECT if self._ecn_capable else ECN.NOT_ECT,
                        fec_block=(start, end))
        packet.sent_time_ns = now
        self.stats.repair_packets_sent += 1
        self.stats.repair_bytes_sent += payload
        self._nic.send(packet)


class FecDecoder:
    """Receiver-side shim reconstructing losses from repair packets.

    Attach as ``receiver.fec``; repair packets divert to
    :meth:`on_repair`. A repair reconstructs its block's missing bytes iff
    they fit within the redundancy seen for that block (``repairs_seen *
    repair_payload``); recovered ranges are delivered through
    :meth:`TcpReceiver.deliver_ranges`, which ACKs them so the sender
    advances without an RTO.
    """

    def __init__(self, receiver, config: FecConfig, stats: FecStats):
        self._config = config
        self.stats = stats
        self._receiver = receiver
        self._block_budget: dict[tuple[int, int], int] = {}

    def on_repair(self, packet: Packet) -> None:
        """Process one arriving repair packet."""
        self.stats.repairs_received += 1
        block = packet.fec_block
        assert block is not None
        start, end = block
        missing = self._receiver.missing_ranges(start, end)
        if not missing:
            self.stats.repairs_wasted += 1
            self._block_budget.pop(block, None)
            return
        budget = self._block_budget.get(block, 0) + packet.payload_bytes
        missing_bytes = sum(e - s for s, e in missing)
        if missing_bytes > budget:
            # Not enough redundancy (multiple losses in the block): leave
            # the budget around in case more repairs show up; ordinary
            # retransmission recovers otherwise.
            self._block_budget[block] = budget
            self.stats.repairs_insufficient += 1
            return
        self._block_budget.pop(block, None)
        self.stats.blocks_recovered += 1
        self.stats.recovered_bytes += missing_bytes
        self._receiver.deliver_ranges(missing)
