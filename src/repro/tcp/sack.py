"""Selective acknowledgment (SACK) support — RFC 2018 blocks with a
simplified RFC 6675 loss-recovery scoreboard.

The paper observes that during high-degree incast "TCP's normal
triple-dupACK fast retransmit does not function and losses can only be
detected via timeouts" because windows are pinned at 1 MSS. A natural
question is whether *modern* loss recovery (SACK) changes that conclusion.
It does not — with one packet in flight there are no successor packets to
generate SACK blocks — and ablation J demonstrates it. At moderate windows
(slow-start overshoot, Figure 6 spikes) SACK does help, which the same
ablation quantifies.

Design notes:

- The receiver reports up to three disjoint out-of-order ranges per ACK
  (most recently grown first, per RFC 2018's guidance).
- The sender keeps a :class:`SackScoreboard` of ranges the receiver holds.
  A sequence is deemed lost once at least ``dupack_threshold`` segments
  above it have been SACKed (the RFC 6675 *IsLost* heuristic by segment
  count).
- During recovery the sender fills holes below the highest SACKed byte
  before sending new data, using SACK-aware in-flight accounting
  (``pipe = snd_nxt - snd_una - sacked``).
"""

from __future__ import annotations

SackBlock = tuple[int, int]
"""A received byte range ``[start, end)`` above the cumulative ACK."""


class SackScoreboard:
    """Sender-side record of receiver-held byte ranges above ``snd_una``."""

    def __init__(self) -> None:
        self._ranges: list[SackBlock] = []  # disjoint, sorted

    @property
    def ranges(self) -> list[SackBlock]:
        """Current SACKed ranges (disjoint, ascending)."""
        return list(self._ranges)

    def clear(self) -> None:
        """Forget everything (used after an RTO's go-back-N rewind)."""
        self._ranges.clear()

    def add(self, start: int, end: int) -> None:
        """Merge one reported block into the scoreboard."""
        if end <= start:
            return
        merged: list[SackBlock] = []
        placed = False
        for r_start, r_end in self._ranges:
            if r_end < start or end < r_start:
                if not placed and r_start > end:
                    merged.append((start, end))
                    placed = True
                merged.append((r_start, r_end))
            else:
                start = min(start, r_start)
                end = max(end, r_end)
        if not placed:
            merged.append((start, end))
            merged.sort()
        self._ranges = merged

    def advance(self, snd_una: int) -> None:
        """Drop state below the new cumulative ACK."""
        kept: list[SackBlock] = []
        for r_start, r_end in self._ranges:
            if r_end > snd_una:
                kept.append((max(r_start, snd_una), r_end))
        self._ranges = kept

    def sacked_bytes(self) -> int:
        """Total bytes the receiver holds above the cumulative ACK."""
        return sum(end - start for start, end in self._ranges)

    def is_sacked(self, seq: int) -> bool:
        """Whether byte ``seq`` lies inside a SACKed range."""
        return any(start <= seq < end for start, end in self._ranges)

    def highest_sacked(self) -> int:
        """One past the highest SACKed byte (0 when empty)."""
        return self._ranges[-1][1] if self._ranges else 0

    def sacked_segments_above(self, seq: int, mss: int) -> int:
        """How many full segments above ``seq`` have been SACKed."""
        sacked = sum(max(0, end - max(start, seq))
                     for start, end in self._ranges)
        return sacked // mss if mss > 0 else 0

    def is_lost(self, seq: int, mss: int, dup_threshold: int) -> bool:
        """RFC 6675 IsLost: ``dup_threshold`` segments above ``seq`` have
        been SACKed, so ``seq`` is presumed dropped."""
        if self.is_sacked(seq):
            return False
        return self.sacked_segments_above(seq, mss) >= dup_threshold

    def next_hole(self, snd_una: int, above: int | None = None
                  ) -> int | None:
        """First unSACKed byte at or above ``max(snd_una, above)`` and
        below the highest SACKed byte, or ``None`` when no hole remains."""
        seq = snd_una if above is None else max(snd_una, above)
        top = self.highest_sacked()
        while seq < top:
            for start, end in self._ranges:
                if start <= seq < end:
                    seq = end
                    break
            else:
                return seq
        return None

    def __repr__(self) -> str:
        return f"SackScoreboard({self._ranges})"
