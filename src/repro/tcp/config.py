"""TCP endpoint configuration.

Defaults follow the paper's simulation setup: 1460-byte MSS (1500-byte MTU),
delayed ACKs disabled ("because it exacerbates burstiness and masks the
impact of DCTCP's congestion control"), ECN enabled, and a 200 ms minimum
RTO (the Linux default, consistent with the ~200 ms burst completion times
the paper reports for timeout-bound Mode 3 incasts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import units
from repro.netsim.packet import DEFAULT_MSS


@dataclass
class TcpConfig:
    """Tunable TCP endpoint parameters.

    Attributes:
        mss_bytes: Maximum segment (payload) size.
        init_cwnd_segments: Initial congestion window, in segments.
        dupack_threshold: Duplicate ACKs that trigger fast retransmit.
        delayed_ack: Enable the receiver's delayed-ACK aggregation. Off by
            default, per the paper.
        delayed_ack_timeout_ns: Delayed-ACK flush timeout.
        min_rto_ns: Lower bound on the retransmission timeout.
        max_rto_ns: Upper bound on the (backed-off) retransmission timeout.
        initial_rto_ns: RTO used before any RTT sample exists.
        ecn_enabled: Whether data packets are sent ECN-capable (ECT).
        max_cwnd_bytes: Optional hard congestion-window ceiling.
        cwnd_restart_after_idle: If true, reset the window to its initial
            value when the connection has been idle longer than one RTO
            (RFC 2861 congestion-window validation). Off by default — the
            paper's production senders keep CWND state across bursts, which
            is what allows straggler divergence (Section 4.3). Turning this
            on is the "remember/forget across bursts" ablation.
        idle_restart_threshold_ns: Idle duration beyond which the restart
            triggers; defaults to the current RTO (RFC 2861). Millisecond
            inter-burst gaps never exceed a 200 ms RTO, so the ablation
            sets this explicitly to bite at burst boundaries.
        sack_enabled: Selective acknowledgments (RFC 2018) with scoreboard
            loss recovery. Off by default, matching the paper's setup;
            ablation J shows SACK cannot rescue Mode 3 (1-MSS windows
            generate no SACK blocks to trigger recovery).
        max_sack_blocks: Blocks carried per ACK (TCP option space limit).
        receiver_window_bytes: Static receiver-advertised flow-control
            window; ``None`` (the default) advertises no limit. Runtime
            controllers (the ICTCP-like throttle) can adjust the advertised
            value per connection regardless of this initial setting.
    """

    mss_bytes: int = DEFAULT_MSS
    init_cwnd_segments: int = 10
    dupack_threshold: int = 3
    delayed_ack: bool = False
    delayed_ack_timeout_ns: int = units.usec(500)
    min_rto_ns: int = units.msec(200)
    max_rto_ns: int = units.sec(2)
    initial_rto_ns: int = units.msec(200)
    ecn_enabled: bool = True
    max_cwnd_bytes: Optional[int] = None
    cwnd_restart_after_idle: bool = False
    idle_restart_threshold_ns: Optional[int] = None
    sack_enabled: bool = False
    max_sack_blocks: int = 3
    receiver_window_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.mss_bytes <= 0:
            raise ValueError("mss_bytes must be positive")
        if self.init_cwnd_segments <= 0:
            raise ValueError("init_cwnd_segments must be positive")
        if self.dupack_threshold <= 0:
            raise ValueError("dupack_threshold must be positive")
        if self.min_rto_ns <= 0 or self.max_rto_ns < self.min_rto_ns:
            raise ValueError("require 0 < min_rto_ns <= max_rto_ns")

    @property
    def init_cwnd_bytes(self) -> int:
        """Initial congestion window in bytes."""
        return self.init_cwnd_segments * self.mss_bytes
