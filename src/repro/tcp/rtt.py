"""Round-trip-time estimation (RFC 6298).

Maintains the smoothed RTT and RTT variance and derives the retransmission
timeout. Senders take one sample per window using Karn's algorithm (samples
from retransmitted segments are discarded); that logic lives in the sender,
this class only does the arithmetic.
"""

from __future__ import annotations

from typing import Optional

ALPHA = 1.0 / 8.0
"""Smoothing gain for SRTT (RFC 6298)."""

BETA = 1.0 / 4.0
"""Smoothing gain for RTTVAR (RFC 6298)."""


class RttEstimator:
    """SRTT/RTTVAR tracker with RTO derivation."""

    def __init__(self, initial_rto_ns: int, min_rto_ns: int, max_rto_ns: int):
        if not 0 < min_rto_ns <= max_rto_ns:
            raise ValueError("require 0 < min_rto_ns <= max_rto_ns")
        self._initial_rto_ns = initial_rto_ns
        self._min_rto_ns = min_rto_ns
        self._max_rto_ns = max_rto_ns
        self._srtt_ns: Optional[float] = None
        self._rttvar_ns = 0.0
        self.samples = 0
        self.min_rtt_ns: Optional[int] = None
        self.last_rtt_ns: Optional[int] = None

    @property
    def srtt_ns(self) -> Optional[float]:
        """Smoothed RTT, or ``None`` before the first sample."""
        return self._srtt_ns

    @property
    def rttvar_ns(self) -> float:
        """RTT variance estimate."""
        return self._rttvar_ns

    def sample(self, rtt_ns: int) -> None:
        """Fold one RTT measurement into the estimator."""
        if rtt_ns <= 0:
            raise ValueError(f"RTT sample must be positive, got {rtt_ns}")
        self.samples += 1
        self.last_rtt_ns = rtt_ns
        if self.min_rtt_ns is None or rtt_ns < self.min_rtt_ns:
            self.min_rtt_ns = rtt_ns
        if self._srtt_ns is None:
            self._srtt_ns = float(rtt_ns)
            self._rttvar_ns = rtt_ns / 2.0
        else:
            self._rttvar_ns = ((1.0 - BETA) * self._rttvar_ns
                               + BETA * abs(self._srtt_ns - rtt_ns))
            self._srtt_ns = (1.0 - ALPHA) * self._srtt_ns + ALPHA * rtt_ns

    def rto_ns(self) -> int:
        """Current retransmission timeout, clamped to the configured range."""
        if self._srtt_ns is None:
            base = self._initial_rto_ns
        else:
            base = int(self._srtt_ns + max(4.0 * self._rttvar_ns, 1.0))
        return max(self._min_rto_ns, min(base, self._max_rto_ns))
