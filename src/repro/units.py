"""Unit constants and converters used across the simulator and analysis code.

The event-driven simulator keeps time as **integer nanoseconds** so that event
ordering is exact and runs are bit-for-bit reproducible. Rates are kept as
**bits per second** (floats are acceptable here because rates only enter time
computations through explicit rounding helpers). Data sizes are **bytes**.

All module-level helpers are pure functions; none touch global state.
"""

from __future__ import annotations

# --- Time ------------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def usec(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return round(value * NS_PER_US)


def msec(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return round(value * NS_PER_MS)


def sec(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return round(value * NS_PER_S)


def ns_to_us(time_ns: int) -> float:
    """Convert integer nanoseconds to microseconds (float)."""
    return time_ns / NS_PER_US


def ns_to_ms(time_ns: int) -> float:
    """Convert integer nanoseconds to milliseconds (float)."""
    return time_ns / NS_PER_MS


def ns_to_s(time_ns: int) -> float:
    """Convert integer nanoseconds to seconds (float)."""
    return time_ns / NS_PER_S


# --- Data size --------------------------------------------------------------

KILOBYTE = 1_000
MEGABYTE = 1_000_000
GIGABYTE = 1_000_000_000

KIBIBYTE = 1_024
MEBIBYTE = 1_024 * 1_024

BITS_PER_BYTE = 8


# --- Rates ------------------------------------------------------------------

KBPS = 1_000.0
MBPS = 1_000_000.0
GBPS = 1_000_000_000.0


def gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * GBPS


def mbps(value: float) -> float:
    """Convert megabits/second to bits/second."""
    return value * MBPS


def bps_to_gbps(rate_bps: float) -> float:
    """Convert bits/second to gigabits/second."""
    return rate_bps / GBPS


def tx_time_ns(size_bytes: int, rate_bps: float) -> int:
    """Serialization delay, in integer nanoseconds, of ``size_bytes`` at
    ``rate_bps``.

    Rounds up so that a link never finishes transmitting a packet earlier
    than physically possible; this keeps byte conservation exact when
    back-computing achievable bytes from elapsed time.
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = size_bytes * BITS_PER_BYTE
    return -(-bits * NS_PER_S // int(rate_bps))  # ceil division


def bytes_in_interval(rate_bps: float, interval_ns: int) -> int:
    """How many whole bytes a rate of ``rate_bps`` moves in ``interval_ns``."""
    return int(rate_bps * interval_ns / (BITS_PER_BYTE * NS_PER_S))


def rate_bps_from(size_bytes: int, interval_ns: int) -> float:
    """Average rate in bits/second of ``size_bytes`` over ``interval_ns``."""
    if interval_ns <= 0:
        raise ValueError(f"interval must be positive, got {interval_ns}")
    return size_bytes * BITS_PER_BYTE * NS_PER_S / interval_ns


def bdp_bytes(rate_bps: float, rtt_ns: int) -> int:
    """Bandwidth-delay product in bytes for a path of ``rate_bps`` and
    round-trip time ``rtt_ns``."""
    return bytes_in_interval(rate_bps, rtt_ns)
