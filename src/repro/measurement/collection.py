"""Fleet measurement campaigns (the Section 3 study shape).

The paper collects two campaigns:

- the *daily* campaign: 2-second traces from 20 hosts per service, nine
  times through a day (Figures 1, 2, 4);
- the *18-hour* campaign: 2-second traces every 10 minutes for 18 hours
  (Figure 3a's temporal-stability series — 108 snapshots).

:func:`run_campaign` generates either shape from the synthetic fleet and
returns per-trace burst summaries, keeping memory bounded by discarding the
raw traces unless asked to retain them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.metrics import TraceSummary, summarize_trace
from repro.measurement.records import HostTrace, TraceMeta
from repro.netsim.fluid import FluidConfig
from repro.simcore.random import RngHub
from repro.workloads.services import (SERVICE_PROFILES, generate_host_trace,
                                      host_rate_multiplier, regime_sequence)


@dataclass
class CampaignConfig:
    """Shape of a measurement campaign."""

    services: tuple[str, ...] = tuple(SERVICE_PROFILES)
    hosts_per_service: int = 20
    n_snapshots: int = 9
    snapshot_spacing_s: float = 600.0
    trace_duration_ms: int = 2000
    seed: int = 0
    keep_traces: bool = False

    def __post_init__(self) -> None:
        if self.hosts_per_service <= 0:
            raise ValueError("hosts_per_service must be positive")
        if self.n_snapshots <= 0:
            raise ValueError("n_snapshots must be positive")
        unknown = set(self.services) - set(SERVICE_PROFILES)
        if unknown:
            raise ValueError(f"unknown services: {sorted(unknown)}")

    @classmethod
    def daily(cls, **overrides) -> "CampaignConfig":
        """The Figures 1/2/4 campaign: 20 hosts x 9 snapshots."""
        return cls(**overrides)

    @classmethod
    def stability(cls, **overrides) -> "CampaignConfig":
        """The Figure 3 campaign: every 10 minutes over 18 hours."""
        overrides.setdefault("n_snapshots", 108)
        return cls(**overrides)


@dataclass
class FleetCampaign:
    """Results of one campaign: per-service trace summaries."""

    config: CampaignConfig
    summaries: dict[str, list[TraceSummary]] = field(default_factory=dict)
    traces: dict[str, list[HostTrace]] = field(default_factory=dict)
    regimes: dict[str, list[int]] = field(default_factory=dict)

    def service_summaries(self, service: str) -> list[TraceSummary]:
        """All trace summaries for ``service``."""
        return self.summaries[service]

    def pooled(self, service: str, attribute: str) -> np.ndarray:
        """Pool a per-burst metric across every trace of ``service``.

        ``attribute`` names a :class:`TraceSummary` array property, e.g.
        ``"flow_counts"`` or ``"marked_fractions"``.
        """
        parts = [getattr(s, attribute) for s in self.summaries[service]]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.zeros(0)
        return np.concatenate(parts)

    def burst_frequencies(self, service: str) -> np.ndarray:
        """Per-trace burst frequency (Figure 2a samples)."""
        return np.asarray([s.burst_frequency_hz
                           for s in self.summaries[service]])


def run_service_campaign(
        cfg: CampaignConfig, service: str,
        fluid_config: Optional[FluidConfig] = None
) -> tuple[list[TraceSummary], list[int], list[HostTrace]]:
    """Generate and summarize one service's slice of a campaign.

    Every RNG stream is derived from ``(cfg.seed, service, host, snapshot)``
    names, so services are independent of each other and of execution order —
    this is the unit of work the parallel experiment engine fans out.
    Returns ``(summaries, regimes, kept_traces)``; ``kept_traces`` is empty
    unless ``cfg.keep_traces`` is set.
    """
    fluid = fluid_config or FluidConfig()
    hub = RngHub(cfg.seed)
    profile = SERVICE_PROFILES[service]
    regime_rng = hub.fresh(f"{service}/regimes")
    regimes = regime_sequence(profile, cfg.n_snapshots, regime_rng)
    summaries: list[TraceSummary] = []
    kept: list[HostTrace] = []
    for host_id in range(cfg.hosts_per_service):
        host_rng = hub.fresh(f"{service}/host{host_id}")
        rate_mult = host_rate_multiplier(profile, host_rng)
        for snapshot in range(cfg.n_snapshots):
            trace_rng = hub.fresh(
                f"{service}/host{host_id}/snap{snapshot}")
            meta = TraceMeta(
                service=service, host_id=host_id,
                snapshot_index=snapshot,
                snapshot_time_s=snapshot * cfg.snapshot_spacing_s)
            trace = generate_host_trace(
                profile, meta, trace_rng,
                duration_ms=cfg.trace_duration_ms,
                fluid_config=fluid,
                regime_index=regimes[snapshot],
                rate_multiplier=rate_mult)
            summaries.append(summarize_trace(trace))
            if cfg.keep_traces:
                kept.append(trace)
    return summaries, regimes, kept


def run_campaign(config: Optional[CampaignConfig] = None,
                 fluid_config: Optional[FluidConfig] = None
                 ) -> FleetCampaign:
    """Generate and summarize a full fleet campaign."""
    cfg = config or CampaignConfig()
    campaign = FleetCampaign(config=cfg)
    for service in cfg.services:
        summaries, regimes, kept = run_service_campaign(
            cfg, service, fluid_config)
        campaign.regimes[service] = regimes
        campaign.summaries[service] = summaries
        if cfg.keep_traces:
            campaign.traces[service] = kept
    return campaign
