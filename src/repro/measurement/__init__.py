"""Host- and switch-side measurement tooling.

Models the paper's production measurement apparatus:

- :mod:`repro.measurement.records` — the Millisampler data model: per-host
  traces of 1 ms interval records (ingress bytes, active flows, ECN-marked
  bytes, retransmitted bytes).
- :mod:`repro.measurement.millisampler` — a packet-level implementation of
  Millisampler that taps a simulated host NIC, mirroring the production
  eBPF tc filter.
- :mod:`repro.measurement.watermark` — switch queue high-watermark sampling
  (per-window max occupancy, the counters ToRs expose).
- :mod:`repro.measurement.collection` — fleet campaign orchestration
  (services x hosts x snapshots), the shape of the paper's 18-hour study.
"""

from repro.measurement.records import HostTrace, TraceMeta
from repro.measurement.millisampler import Millisampler
from repro.measurement.watermark import WatermarkSampler

# NOTE: repro.measurement.collection is intentionally not imported here —
# it depends on repro.core (burst summarization), which itself consumes the
# record types above; import it as `repro.measurement.collection`.

__all__ = [
    "HostTrace",
    "TraceMeta",
    "Millisampler",
    "WatermarkSampler",
]
