"""Packet-level Millisampler.

The production Millisampler runs as an eBPF tc filter on each host and
accumulates per-1 ms counters over the ingress packet stream. This class
does the same for a simulated host: it taps the NIC's ingress hook and
accumulates, per interval, the ingress byte count, the set of distinct
flows, the CE-marked bytes, and the retransmitted bytes — then exports a
:class:`~repro.measurement.records.HostTrace` identical in shape to what
the fleet model synthesizes, so the whole Section 3 analysis pipeline runs
unchanged on packet-level simulations (that cross-validation is one of the
repository's tests).
"""

from __future__ import annotations

from typing import Optional

from repro import units
import numpy as np

from repro.measurement.records import HostTrace, TraceMeta
from repro.netsim.host import Host
from repro.netsim.packet import ECN, Packet


class Millisampler:
    """Interval-sampling ingress tap on one host.

    Args:
        host: The host whose ingress to sample.
        line_rate_bps: NIC line rate, recorded in the exported trace.
        interval_ns: Sampling interval (1 ms in the paper).
        meta: Capture identity for the exported trace.
        count_acks: Whether pure ACKs count toward ingress bytes. Off by
            default — the paper's burst definition concerns data arriving
            at the *receiver*.
    """

    def __init__(self, host: Host, line_rate_bps: float,
                 interval_ns: int = units.msec(1.0),
                 meta: Optional[TraceMeta] = None,
                 count_acks: bool = False):
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        self.host = host
        self.line_rate_bps = line_rate_bps
        self.interval_ns = interval_ns
        self.meta = meta or TraceMeta(service="sim", host_id=host.address)
        self.count_acks = count_acks
        self._ingress: dict[int, int] = {}
        self._marked: dict[int, int] = {}
        self._retx: dict[int, int] = {}
        self._flows: dict[int, set[int]] = {}
        self._start_ns: Optional[int] = None
        host.nic.add_ingress_hook(self._on_packet)

    def _on_packet(self, packet: Packet, now_ns: int) -> None:
        if packet.is_ack and not self.count_acks:
            return
        if self._start_ns is None:
            self._start_ns = (now_ns // self.interval_ns) * self.interval_ns
        index = (now_ns - self._start_ns) // self.interval_ns
        size = packet.size_bytes
        self._ingress[index] = self._ingress.get(index, 0) + size
        self._flows.setdefault(index, set()).add(packet.flow_id)
        if packet.ecn == ECN.CE:
            self._marked[index] = self._marked.get(index, 0) + size
        if packet.is_retransmit:
            self._retx[index] = self._retx.get(index, 0) + size

    @property
    def intervals_observed(self) -> int:
        """Number of intervals from first packet through the last seen."""
        if not self._ingress:
            return 0
        return max(self._ingress) + 1

    def export(self, n_intervals: Optional[int] = None) -> HostTrace:
        """Build the capture as a :class:`HostTrace`.

        ``n_intervals`` pads (or truncates) to a fixed length, e.g. the
        2000 intervals of a 2-second capture.
        """
        n = self.intervals_observed if n_intervals is None else n_intervals
        ingress = np.zeros(n, dtype=np.int64)
        flows = np.zeros(n, dtype=np.int64)
        marked = np.zeros(n, dtype=np.int64)
        retx = np.zeros(n, dtype=np.int64)
        for index, total in self._ingress.items():
            if index < n:
                ingress[index] = total
        for index, flow_set in self._flows.items():
            if index < n:
                flows[index] = len(flow_set)
        for index, total in self._marked.items():
            if index < n:
                marked[index] = total
        for index, total in self._retx.items():
            if index < n:
                retx[index] = total
        return HostTrace(self.meta, self.line_rate_bps, ingress, flows,
                         marked, retx, interval_ns=self.interval_ns)

    def reset(self) -> None:
        """Drop all accumulated counters and restart on the next packet."""
        self._ingress.clear()
        self._marked.clear()
        self._retx.clear()
        self._flows.clear()
        self._start_ns = None
