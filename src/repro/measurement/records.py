"""The Millisampler data model.

Millisampler (Ghabashneh et al., IMC 2022) records, per host and per 1 ms
interval, the ingress byte count, the number of distinct active flows, the
bytes carried by ECN CE-marked packets, and the bytes identified as TCP
retransmissions. A :class:`HostTrace` holds one contiguous capture (the
paper uses 2-second captures) as dense numpy arrays plus capture metadata.

Synthetic traces produced by the fleet model additionally carry the ToR
queue occupancy fraction per interval — ground truth the production tool
does not see but which the switch watermark counters approximate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units

DEFAULT_INTERVAL_NS = units.msec(1.0)


@dataclass(frozen=True)
class TraceMeta:
    """Identity of one capture: which host, which service, when."""

    service: str
    host_id: int
    snapshot_index: int = 0
    snapshot_time_s: float = 0.0


class HostTrace:
    """One host's interval-sampled ingress trace.

    Attributes:
        meta: Capture identity.
        line_rate_bps: The host NIC's line rate.
        interval_ns: Sampling interval (1 ms in the paper).
        ingress_bytes: Per-interval ingress byte counts.
        active_flows: Per-interval count of distinct flows seen.
        marked_bytes: Per-interval bytes arriving with ECN CE set.
        retransmit_bytes: Per-interval bytes identified as retransmissions.
        queue_frac: Optional per-interval bottleneck queue occupancy as a
            fraction of effective capacity (synthetic traces only).
    """

    def __init__(self, meta: TraceMeta, line_rate_bps: float,
                 ingress_bytes: np.ndarray, active_flows: np.ndarray,
                 marked_bytes: np.ndarray, retransmit_bytes: np.ndarray,
                 interval_ns: int = DEFAULT_INTERVAL_NS,
                 queue_frac: Optional[np.ndarray] = None):
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        if interval_ns <= 0:
            raise ValueError("interval must be positive")
        n = len(ingress_bytes)
        for name, arr in (("active_flows", active_flows),
                          ("marked_bytes", marked_bytes),
                          ("retransmit_bytes", retransmit_bytes)):
            if len(arr) != n:
                raise ValueError(f"{name} length {len(arr)} != {n}")
        if queue_frac is not None and len(queue_frac) != n:
            raise ValueError("queue_frac length mismatch")
        self.meta = meta
        self.line_rate_bps = line_rate_bps
        self.interval_ns = interval_ns
        self.ingress_bytes = np.asarray(ingress_bytes, dtype=np.int64)
        self.active_flows = np.asarray(active_flows, dtype=np.int64)
        self.marked_bytes = np.asarray(marked_bytes, dtype=np.int64)
        self.retransmit_bytes = np.asarray(retransmit_bytes, dtype=np.int64)
        self.queue_frac = (None if queue_frac is None
                           else np.asarray(queue_frac, dtype=np.float64))

    # --- size / time ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.ingress_bytes)

    @property
    def n_intervals(self) -> int:
        """Number of sampling intervals in the capture."""
        return len(self.ingress_bytes)

    @property
    def duration_ns(self) -> int:
        """Total capture duration."""
        return self.n_intervals * self.interval_ns

    @property
    def times_ms(self) -> np.ndarray:
        """Interval start times, in milliseconds from capture start."""
        return (np.arange(self.n_intervals)
                * (self.interval_ns / units.NS_PER_MS))

    # --- rates ---------------------------------------------------------------

    @property
    def interval_capacity_bytes(self) -> float:
        """Bytes one interval can carry at line rate."""
        return self.line_rate_bps * self.interval_ns / (
            units.BITS_PER_BYTE * units.NS_PER_S)

    def utilization(self) -> np.ndarray:
        """Per-interval ingress rate as a fraction of line rate."""
        return self.ingress_bytes / self.interval_capacity_bytes

    def ingress_rate_gbps(self) -> np.ndarray:
        """Per-interval ingress rate in Gbps."""
        return (self.ingress_bytes * units.BITS_PER_BYTE
                / self.interval_ns * units.NS_PER_S / units.GBPS)

    def marked_rate_gbps(self) -> np.ndarray:
        """Per-interval ECN-marked ingress rate in Gbps."""
        return (self.marked_bytes * units.BITS_PER_BYTE
                / self.interval_ns * units.NS_PER_S / units.GBPS)

    def retransmit_rate_gbps(self) -> np.ndarray:
        """Per-interval retransmitted ingress rate in Gbps."""
        return (self.retransmit_bytes * units.BITS_PER_BYTE
                / self.interval_ns * units.NS_PER_S / units.GBPS)

    def mean_utilization(self) -> float:
        """Average link utilization over the capture (the paper's example
        trace averages ~10.6%)."""
        return float(self.utilization().mean())

    def __repr__(self) -> str:
        return (f"HostTrace({self.meta.service}/host{self.meta.host_id}"
                f"/snap{self.meta.snapshot_index}, {self.n_intervals} x "
                f"{self.interval_ns / units.NS_PER_MS:g} ms, "
                f"util={self.mean_utilization():.1%})")
