"""Switch queue high-watermark sampling (Section 3.4).

To keep measurement overheads low, the paper's ToR switches expose queue
occupancy as a *high watermark*: the maximum occupancy reached over the
last window (one minute in production). This sampler reproduces those
semantics over a simulated :class:`~repro.netsim.queues.DropTailQueue`:
every ``window_ns`` it records the peak occupancy since the previous read
and resets the counter.

:class:`WatermarkChannelProbe` is the online variant: instead of keeping a
private series, it publishes instantaneous occupancy samples onto the
``queue.watermark`` hook channel (:data:`WATERMARK_CHANNEL`), so in-sim
consumers — the burst detector of the ``detect`` mitigation scheme, or
any recorder — can subscribe without touching the queue itself. It reads
``len_packets`` directly rather than the watermark register, so it never
perturbs the per-burst peak accounting the incast workload relies on.
"""

from __future__ import annotations

from repro import units
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator
from repro.simcore.trace import TimeSeries

WATERMARK_CHANNEL = "queue.watermark"
"""Hook channel carrying ``(queue_name, depth_packets, t_ns)`` samples."""


class WatermarkSampler:
    """Periodic high-watermark reader for one queue.

    Attributes:
        series: ``(time_ns, watermark_packets)`` samples; each value is the
            peak queue length over the preceding window.
    """

    def __init__(self, sim: Simulator, queue: DropTailQueue,
                 window_ns: int = units.sec(60.0),
                 capacity_packets: int | None = None):
        if window_ns <= 0:
            raise ValueError("window must be positive")
        self._sim = sim
        self._queue = queue
        self.window_ns = window_ns
        self.capacity_packets = (capacity_packets
                                 if capacity_packets is not None
                                 else queue.capacity_packets)
        self.series = TimeSeries(f"{queue.name}.watermark")
        self._running = False

    def start(self) -> None:
        """Begin sampling: resets the watermark now, reads every window."""
        if self._running:
            return
        self._running = True
        self._queue.stats.reset_watermark()
        self._sim.schedule(self.window_ns, self._tick)

    def stop(self) -> None:
        """Stop sampling after the current window."""
        self._running = False

    def read_now(self) -> int:
        """Read and reset the watermark immediately (out-of-band poll).

        The reading can never be below the queue's *current* occupancy — a
        standing backlog is a watermark even if nothing was enqueued during
        the window."""
        value = max(self._queue.stats.max_len_packets,
                    self._queue.len_packets)
        self._queue.stats.reset_watermark()
        return value

    def _tick(self) -> None:
        if not self._running:
            return
        self.series.record(self._sim.now, float(self.read_now()))
        self._sim.schedule(self.window_ns, self._tick)

    def watermark_fractions(self) -> list[float]:
        """Recorded watermarks as fractions of queue capacity (the units of
        Figure 4a)."""
        if not self.capacity_packets:
            return []
        return [v / self.capacity_packets for v in self.series.values]


class WatermarkChannelProbe:
    """Periodic occupancy publisher for the ``queue.watermark`` channel.

    Every ``period_ns`` the probe emits
    ``sim.hooks.emit(WATERMARK_CHANNEL, queue_name, depth, now)`` with the
    queue's instantaneous occupancy. Emission is observer-gated by the
    hook registry, so an unsubscribed channel costs one dict lookup per
    sample and nothing perturbs packet timing.
    """

    def __init__(self, sim: Simulator, queue: DropTailQueue,
                 period_ns: int = units.usec(50.0)):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._queue = queue
        self.period_ns = period_ns
        self.samples = 0
        self._running = False

    def start(self) -> None:
        """Begin publishing samples, starting now."""
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop publishing at the next tick."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.samples += 1
        self._sim.hooks.emit(WATERMARK_CHANNEL, self._queue.name,
                             self._queue.len_packets, self._sim.now)
        self._sim.schedule_fire(self.period_ns, self._tick)
