"""Incast classification (Section 3.3).

Historically "incast" meant any many-to-one convergence, but multiple flows
per host are standard practice in datacenters and modern CCAs handle a few
dozen flows well. The paper therefore classifies a burst as an *incast*
only when it involves at least 25 active flows.
"""

from __future__ import annotations

import numpy as np

from repro.core.bursts import Burst

INCAST_FLOW_THRESHOLD = 25
"""Minimum active flows for a burst to count as an incast (the paper's
definition)."""


def is_incast(burst: Burst,
              flow_threshold: int = INCAST_FLOW_THRESHOLD) -> bool:
    """Whether ``burst`` qualifies as an incast."""
    return burst.max_active_flows >= flow_threshold


def incast_fraction(bursts: list[Burst],
                    flow_threshold: int = INCAST_FLOW_THRESHOLD) -> float:
    """Fraction of ``bursts`` that are incasts."""
    if not bursts:
        return 0.0
    return sum(is_incast(b, flow_threshold) for b in bursts) / len(bursts)


def degree_distribution(bursts: list[Burst]) -> np.ndarray:
    """Per-burst incast degrees (peak active flows), as an array suitable
    for CDF plotting (Figure 2c)."""
    return np.asarray([b.max_active_flows for b in bursts], dtype=np.int64)


def low_mode_fraction(bursts: list[Burst], cutoff_flows: int = 20) -> float:
    """Fraction of bursts below ``cutoff_flows`` — the "cliff" that reveals
    a bimodal workload (storage and aggregator in Figure 2c)."""
    if not bursts:
        return 0.0
    return sum(b.max_active_flows < cutoff_flows for b in bursts) / len(bursts)
