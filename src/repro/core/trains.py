"""Temporal structure of bursts: inter-arrival statistics and trains.

The paper reports burst *frequency*; a companion question for anyone
acting on bursts (e.g. the predictor, or a scheduler deciding whether to
keep windows clamped between bursts) is how bursts cluster in time:

- :func:`inter_burst_gaps_ms` — idle gaps between consecutive bursts;
- :func:`burstiness_coefficient` — coefficient of variation of those gaps
  (1 for a Poisson process, larger when bursts arrive in clumps);
- :func:`group_trains` / :func:`analyze_trains` — group bursts separated
  by less than a threshold into *trains*, the natural unit over which
  carried-over CWND state (Section 4.3) stays relevant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.core.bursts import Burst
from repro.measurement.records import HostTrace


def inter_burst_gaps_ms(bursts: list[Burst]) -> np.ndarray:
    """Idle time between the end of each burst and the start of the next,
    in milliseconds (empty for fewer than two bursts)."""
    if len(bursts) < 2:
        return np.zeros(0)
    gaps = []
    for earlier, later in zip(bursts, bursts[1:]):
        interval_ms = earlier.trace.interval_ns / units.NS_PER_MS
        gaps.append((later.start - earlier.end) * interval_ms)
    return np.asarray(gaps, dtype=np.float64)


def burstiness_coefficient(gaps_ms: np.ndarray) -> float:
    """Coefficient of variation of inter-burst gaps.

    ~1 for Poisson arrivals; > 1 indicates clumped (trainlike) arrivals;
    0 for perfectly periodic bursts or insufficient data.
    """
    gaps_ms = np.asarray(gaps_ms, dtype=np.float64)
    if gaps_ms.size < 2 or gaps_ms.mean() == 0:
        return 0.0
    return float(gaps_ms.std() / gaps_ms.mean())


def group_trains(bursts: list[Burst],
                 max_gap_ms: float = 5.0) -> list[list[Burst]]:
    """Group bursts whose separating gap is at most ``max_gap_ms`` into
    trains. Bursts must be in time order (as ``detect_bursts`` returns)."""
    if max_gap_ms < 0:
        raise ValueError("max_gap_ms must be >= 0")
    trains: list[list[Burst]] = []
    for burst in bursts:
        if trains:
            previous = trains[-1][-1]
            interval_ms = previous.trace.interval_ns / units.NS_PER_MS
            gap = (burst.start - previous.end) * interval_ms
            if gap <= max_gap_ms:
                trains[-1].append(burst)
                continue
        trains.append([burst])
    return trains


@dataclass(frozen=True)
class TrainStats:
    """Summary of one trace's burst-train structure."""

    n_bursts: int
    n_trains: int
    mean_train_size: float
    max_train_size: int
    solo_fraction: float
    burstiness: float
    median_gap_ms: float

    @property
    def trainy(self) -> bool:
        """Whether a meaningful share of bursts arrive in trains."""
        return self.solo_fraction < 0.7 and self.max_train_size >= 3


def analyze_trains(trace: HostTrace, bursts: list[Burst] | None = None,
                   max_gap_ms: float = 5.0) -> TrainStats:
    """Full temporal-structure summary for one capture."""
    from repro.core.bursts import detect_bursts
    if bursts is None:
        bursts = detect_bursts(trace)
    gaps = inter_burst_gaps_ms(bursts)
    trains = group_trains(bursts, max_gap_ms)
    sizes = np.asarray([len(t) for t in trains], dtype=np.int64)
    return TrainStats(
        n_bursts=len(bursts),
        n_trains=len(trains),
        mean_train_size=float(sizes.mean()) if sizes.size else 0.0,
        max_train_size=int(sizes.max()) if sizes.size else 0,
        solo_fraction=float((sizes == 1).mean()) if sizes.size else 0.0,
        burstiness=burstiness_coefficient(gaps),
        median_gap_ms=float(np.median(gaps)) if gaps.size else 0.0,
    )
