"""DCTCP operating modes (Section 4.1).

The paper identifies three regimes, parameterized by the incast degree K,
the switch ECN threshold, the path BDP, and the queue capacity (all in
segments):

- **Mode 1 — healthy** (K below the degenerate point): flows can back off
  enough that the queue oscillates around the marking threshold, with
  periods of no marking that let DCTCP ramp back up.
- **Mode 2 — degenerate** (K at least the degenerate point, but standing
  queue within capacity): every flow is pinned at the 1-MSS floor, so the
  queue is simply ``K - BDP`` segments, permanently above the threshold;
  senders have no recourse. BCT stays near optimal but delay is high.
- **Mode 3 — timeouts** (first-window spike or standing queue beyond
  capacity): drops with windows too small for triple-dupACK recovery, so
  losses surface as RTOs and BCT explodes by an order of magnitude.

:class:`ModeModel` provides the analytic prediction;
:func:`classify_queue_trace` classifies an observed queue-length series the
way the paper's Figure 5 panels are read.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class DctcpMode(enum.IntEnum):
    """The three operating modes of Figure 5."""

    HEALTHY = 1
    DEGENERATE = 2
    TIMEOUT = 3


def degenerate_flow_count(ecn_threshold_packets: int,
                          bdp_packets: float) -> int:
    """K*: the smallest flow count at which the queue can no longer drain
    below the ECN threshold even with every flow at a 1-MSS window.

    At minimum windows, total in-flight data is K segments; the network
    "absorbs" the BDP and the queue holds the rest, so the queue stays at
    or above the threshold once ``K >= threshold + BDP`` (Section 4.1.2).
    """
    return int(np.ceil(ecn_threshold_packets + bdp_packets))


@dataclass(frozen=True)
class ModeModel:
    """Analytic mode prediction for a given bottleneck configuration.

    Attributes (all in packets/segments):
        ecn_threshold_packets: Switch marking threshold.
        queue_capacity_packets: Queue capacity (effective, if shared).
        bdp_packets: Bandwidth-delay product of the path.
        healthy_margin: Empirical slack on the degenerate point below which
            DCTCP still regulates. The strict arithmetic says the queue is
            pinned once K segments exceed threshold + BDP (K* = 90 in the
            paper's setup), but flows hover between 1 and 2 MSS rather than
            sitting exactly at the floor, so in practice regulation only
            breaks down around ~1.6 K* — the paper's "≈150 flows in this
            configuration" observation.
    """

    ecn_threshold_packets: int
    queue_capacity_packets: int
    bdp_packets: float
    healthy_margin: float = 1.6

    @property
    def degenerate_point(self) -> int:
        """K* — the Mode 1 / Mode 2 boundary."""
        return degenerate_flow_count(self.ecn_threshold_packets,
                                     self.bdp_packets)

    @property
    def overflow_point(self) -> int:
        """The flow count beyond which even minimum windows overflow the
        queue: ``K > capacity + BDP`` guarantees steady-state loss (the
        Mode 2 / Mode 3 boundary for perfectly converged flows)."""
        return int(np.floor(self.queue_capacity_packets + self.bdp_packets))

    def predict(self, n_flows: int,
                start_spike_factor: float = 1.0) -> DctcpMode:
        """Predicted mode for an incast of ``n_flows``.

        ``start_spike_factor`` scales the burst-start window dump: straggler
        divergence (Section 4.3) makes flows begin a burst with more than
        the 1-MSS floor in flight, which moves the loss boundary down —
        the reason the paper observes Mode 3 at 1000 flows even though the
        converged standing queue would fit.
        """
        if n_flows <= 0:
            raise ValueError("n_flows must be positive")
        spike = n_flows * max(start_spike_factor, 1.0)
        if spike > self.overflow_point:
            return DctcpMode.TIMEOUT
        if n_flows < self.degenerate_point * self.healthy_margin:
            return DctcpMode.HEALTHY
        return DctcpMode.DEGENERATE

    def expected_standing_queue_packets(self, n_flows: int) -> float:
        """Expected steady-state queue length during the burst.

        Mode 1 sits near the marking threshold; Mode 2 is pinned at
        ``K - BDP`` (clamped to capacity)."""
        if n_flows < self.degenerate_point:
            return float(self.ecn_threshold_packets)
        return float(min(n_flows - self.bdp_packets,
                         self.queue_capacity_packets))


def classify_queue_trace(queue_packets: np.ndarray, model: ModeModel,
                         drops: int = 0,
                         healthy_dip_fraction: float = 0.15
                         ) -> DctcpMode:
    """Classify an observed bottleneck queue series into a mode.

    Reads the trace the way the paper reads Figure 5: losses (or the queue
    riding capacity) mean Mode 3; a queue that regularly returns to the
    marking-threshold *region* means Mode 1 (DCTCP observes no-marking
    periods and can regulate); a queue pinned far above the threshold means
    Mode 2. The healthy region extends one BDP above the threshold — the
    paper's Figure 5a oscillation band ("it takes ~90 packets in flight to
    trigger ECN marks" = threshold + BDP) — because a queue riding within
    that band still gives DCTCP unmarked windows.
    """
    queue = np.asarray(queue_packets, dtype=np.float64)
    if queue.size == 0:
        raise ValueError("empty queue trace")
    if drops > 0 or queue.max() >= model.queue_capacity_packets:
        return DctcpMode.TIMEOUT
    band_top = model.ecn_threshold_packets + model.bdp_packets
    dips = float((queue < band_top).mean())
    if dips >= healthy_dip_fraction:
        return DctcpMode.HEALTHY
    return DctcpMode.DEGENERATE
