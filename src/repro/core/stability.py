"""Stability of incast-degree distributions (Section 3.3, Figure 3).

The paper's most actionable finding: for each service, the distribution of
flow counts during bursts barely changes over 18 hours or across the
service's hosts. This module quantifies that claim:

- :func:`temporal_stability` — per-snapshot mean/p99 flow count over a
  campaign (Figure 3a) plus a coefficient-of-variation stability score;
- :func:`cross_host_stability` — per-host mean/p99 (Figure 3b);
- :func:`split_regimes` — detects two-mode operation ("video" alternating
  between ~225 and ~275 flows) with a 1-D two-means split.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import TraceSummary


@dataclass(frozen=True)
class StabilityReport:
    """Mean/p99 flow count per group (snapshot or host)."""

    group_label: str
    group_keys: tuple[int, ...]
    means: np.ndarray
    p99s: np.ndarray

    @property
    def mean_of_means(self) -> float:
        """Grand mean of the per-group means."""
        return float(self.means.mean()) if self.means.size else 0.0

    @property
    def cov_of_means(self) -> float:
        """Coefficient of variation of per-group means — the stability
        score (small = stable = predictable)."""
        if self.means.size == 0 or self.means.mean() == 0:
            return 0.0
        return float(self.means.std() / self.means.mean())

    @property
    def cov_of_p99s(self) -> float:
        """Coefficient of variation of per-group p99s (worst-case
        predictability, the quantity Section 3.3 highlights)."""
        if self.p99s.size == 0 or self.p99s.mean() == 0:
            return 0.0
        return float(self.p99s.std() / self.p99s.mean())

    def is_stable(self, cov_threshold: float = 0.25) -> bool:
        """Whether per-group means stay within ``cov_threshold`` relative
        dispersion."""
        return self.cov_of_means <= cov_threshold

    def export_dict(self) -> dict:
        """JSON-export summary (consumed by :mod:`repro.analysis.export`)."""
        return {
            "group_label": self.group_label,
            "group_keys": list(self.group_keys),
            "means": self.means,
            "p99s": self.p99s,
            "mean_of_means": self.mean_of_means,
            "cov_of_means": self.cov_of_means,
            "cov_of_p99s": self.cov_of_p99s,
            "stable": self.is_stable(),
        }


def _grouped_flow_stats(summaries: list[TraceSummary],
                        key_fn, label: str) -> StabilityReport:
    grouped: dict[int, list[int]] = defaultdict(list)
    for summary in summaries:
        grouped[key_fn(summary)].extend(int(f) for f in summary.flow_counts)
    keys = sorted(grouped)
    means, p99s = [], []
    for key in keys:
        flows = np.asarray(grouped[key], dtype=np.float64)
        if flows.size == 0:
            means.append(0.0)
            p99s.append(0.0)
        else:
            means.append(float(flows.mean()))
            p99s.append(float(np.percentile(flows, 99)))
    return StabilityReport(label, tuple(keys), np.asarray(means),
                           np.asarray(p99s))


def temporal_stability(summaries: list[TraceSummary]) -> StabilityReport:
    """Per-snapshot flow-count stability (Figure 3a): group one service's
    trace summaries by snapshot index and track mean/p99 over time."""
    return _grouped_flow_stats(summaries, lambda s: s.snapshot_index,
                               "snapshot")


def cross_host_stability(summaries: list[TraceSummary]) -> StabilityReport:
    """Per-host flow-count stability (Figure 3b): group one service's trace
    summaries by host and compare mean/p99 across hosts."""
    return _grouped_flow_stats(summaries, lambda s: s.host_id, "host")


def split_regimes(values: np.ndarray, max_iterations: int = 50
                  ) -> tuple[float, float, np.ndarray]:
    """Two-means split of a 1-D series.

    Returns ``(low_center, high_center, assignment)`` where ``assignment``
    maps each value to regime 0 (low) or 1 (high). Used to recover the
    "video" service's two operating modes from its per-snapshot means.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0, 0.0, np.zeros(0, dtype=np.int64)
    low, high = float(values.min()), float(values.max())
    if low == high:
        return low, high, np.zeros(values.size, dtype=np.int64)
    for _ in range(max_iterations):
        assignment = (np.abs(values - high)
                      < np.abs(values - low)).astype(np.int64)
        new_low = float(values[assignment == 0].mean()) \
            if (assignment == 0).any() else low
        new_high = float(values[assignment == 1].mean()) \
            if (assignment == 1).any() else high
        if new_low == low and new_high == high:
            break
        low, high = new_low, new_high
    return low, high, assignment


def regime_separation(values: np.ndarray) -> float:
    """Relative separation of the two regimes found by
    :func:`split_regimes`: ``(high - low) / mean``. Near zero for
    single-regime services, ~0.2 for "video"'s 225/275 modes."""
    low, high, _ = split_regimes(np.asarray(values))
    mean = np.mean(values) if len(values) else 0.0
    return float((high - low) / mean) if mean else 0.0
