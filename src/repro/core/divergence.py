"""Burst-boundary divergence analysis (Section 4.3, Figure 7).

Within a large incast, unfairness develops: some flows finish early, the
stragglers ramp their windows up on the freed capacity, and at the next
burst those inflated windows dump into the queue all at once. This module
quantifies that cycle from per-flow in-flight samples:

- percentile bands of in-flight data across *active* flows over time (the
  exact series Figure 7 plots: median, average, p95, p100);
- tail skew (p100/mean), the signature of straggler ramp-up;
- end-of-burst ramp ratio — how much the average in-flight of active flows
  rises in the burst's tail relative to its middle;
- Jain's fairness index across active flows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def jains_index(values: np.ndarray) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally unfair.

    Zero-valued entries participate (an idle flow counts as receiving no
    service). Returns 1.0 for an empty or all-zero input.
    """
    x = np.asarray(values, dtype=np.float64)
    if x.size == 0:
        return 1.0
    total = x.sum()
    squares = (x * x).sum()
    if squares == 0.0:
        return 1.0
    return float(total * total / (x.size * squares))


@dataclass(frozen=True)
class DivergenceReport:
    """Per-sample percentile bands plus scalar divergence signatures."""

    times_ns: np.ndarray
    mean_inflight: np.ndarray
    median_inflight: np.ndarray
    p95_inflight: np.ndarray
    p100_inflight: np.ndarray
    active_flows: np.ndarray
    min_jains_index: float
    tail_skew: float
    end_ramp_ratio: float

    @property
    def has_stragglers(self) -> bool:
        """Heuristic: straggler divergence shows up either as a pronounced
        in-flight tail (p100 well above the mean) accompanied by end-of-burst
        ramp-up, or as a strong ramp alone (when only the stragglers remain
        active, the percentile bands collapse onto them)."""
        return ((self.tail_skew >= 2.0 and self.end_ramp_ratio >= 1.2)
                or self.end_ramp_ratio >= 2.0)


def analyze_divergence(times_ns: np.ndarray, inflight: np.ndarray,
                       active: np.ndarray,
                       tail_fraction: float = 0.15) -> DivergenceReport:
    """Compute Figure 7's series and divergence signatures.

    Args:
        times_ns: Sample times, shape ``(T,)``.
        inflight: Per-flow in-flight bytes, shape ``(T, N)``.
        active: Per-flow activity mask, shape ``(T, N)``; percentiles are
            taken across active flows only, as in the paper.
        tail_fraction: Fraction of the active span treated as the burst's
            tail when computing the end-ramp ratio.
    """
    times_ns = np.asarray(times_ns, dtype=np.int64)
    inflight = np.asarray(inflight, dtype=np.float64)
    active = np.asarray(active, dtype=bool)
    if inflight.shape != active.shape or len(times_ns) != inflight.shape[0]:
        raise ValueError("times/inflight/active shapes disagree")

    n_samples = inflight.shape[0]
    mean = np.zeros(n_samples)
    median = np.zeros(n_samples)
    p95 = np.zeros(n_samples)
    p100 = np.zeros(n_samples)
    counts = active.sum(axis=1)
    min_jain = 1.0
    for i in range(n_samples):
        live = inflight[i, active[i]]
        if live.size == 0:
            continue
        mean[i] = live.mean()
        median[i], p95[i], p100[i] = np.percentile(live, [50, 95, 100])
        if live.size > 1:
            min_jain = min(min_jain, jains_index(live))

    busy = np.flatnonzero(counts > 0)
    tail_skew = 0.0
    end_ramp = 0.0
    if busy.size >= 4:
        lo, hi = busy[0], busy[-1] + 1
        span = hi - lo
        tail_start = hi - max(1, int(round(span * tail_fraction)))
        mid = slice(lo + span // 4, max(lo + span // 4 + 1, tail_start))
        with np.errstate(invalid="ignore"):
            mid_mean = float(mean[mid][mean[mid] > 0].mean()) \
                if (mean[mid] > 0).any() else 0.0
        tail_mean = float(mean[tail_start:hi][mean[tail_start:hi] > 0].mean()) \
            if (mean[tail_start:hi] > 0).any() else 0.0
        if mid_mean > 0:
            end_ramp = tail_mean / mid_mean
            skews = p100[lo:hi][mean[lo:hi] > 0] / mean[lo:hi][mean[lo:hi] > 0]
            tail_skew = float(skews.max()) if skews.size else 0.0

    return DivergenceReport(
        times_ns=times_ns,
        mean_inflight=mean,
        median_inflight=median,
        p95_inflight=p95,
        p100_inflight=p100,
        active_flows=counts,
        min_jains_index=min_jain,
        tail_skew=tail_skew,
        end_ramp_ratio=end_ramp,
    )
