"""The paper's primary contribution: incast burst characterization and
congestion-control diagnosis.

- :mod:`repro.core.bursts` — burst detection over Millisampler traces (the
  paper's definition: contiguous 1 ms intervals above 50% of line rate).
- :mod:`repro.core.metrics` — per-burst metrics (duration, flows, marking,
  retransmissions, queueing) and per-trace summaries.
- :mod:`repro.core.incast` — incast classification (>= 25 flows), degree
  distributions, bimodality.
- :mod:`repro.core.stability` — temporal and cross-host stability of
  incast-degree distributions (Section 3.3).
- :mod:`repro.core.modes` — DCTCP operating-mode model: the degenerate
  point and Mode 1/2/3 classification (Section 4.1).
- :mod:`repro.core.divergence` — burst-boundary divergence: straggler
  identification and unfairness metrics (Section 4.3).
- :mod:`repro.core.predictor` — incast-degree prediction from burst history
  and guardrail recommendation (Sections 3.3 and 5.1).
"""

from repro.core.bursts import Burst, burst_frequency_hz, detect_bursts
from repro.core.incast import (INCAST_FLOW_THRESHOLD, incast_fraction,
                               is_incast)
from repro.core.metrics import BurstMetrics, TraceSummary, summarize_trace
from repro.core.modes import (DctcpMode, ModeModel, classify_queue_trace,
                              degenerate_flow_count)
from repro.core.divergence import (DivergenceReport, analyze_divergence,
                                   jains_index)
from repro.core.predictor import (GuardrailAdvisor, IncastDegreePredictor,
                                  QuantileTracker)
from repro.core.stability import (StabilityReport, cross_host_stability,
                                  temporal_stability)
from repro.core.trains import (TrainStats, analyze_trains,
                               burstiness_coefficient, group_trains,
                               inter_burst_gaps_ms)

__all__ = [
    "Burst",
    "detect_bursts",
    "burst_frequency_hz",
    "INCAST_FLOW_THRESHOLD",
    "is_incast",
    "incast_fraction",
    "BurstMetrics",
    "TraceSummary",
    "summarize_trace",
    "DctcpMode",
    "ModeModel",
    "classify_queue_trace",
    "degenerate_flow_count",
    "DivergenceReport",
    "analyze_divergence",
    "jains_index",
    "GuardrailAdvisor",
    "IncastDegreePredictor",
    "QuantileTracker",
    "StabilityReport",
    "temporal_stability",
    "cross_host_stability",
    "TrainStats",
    "analyze_trains",
    "burstiness_coefficient",
    "group_trains",
    "inter_burst_gaps_ms",
]
