"""Burst detection (the paper's Section 3.1 definition).

A *burst* is any contiguous span of sampling intervals during which the
average aggregate ingress rate, measured at the receiver at 1 ms
granularity, exceeds 50% of the NIC line rate. Everything downstream — the
frequency/duration/flow-count CDFs of Figure 2, the marking and
retransmission CDFs of Figure 4 — is computed per detected burst.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.measurement.records import HostTrace

BURST_UTILIZATION_THRESHOLD = 0.5
"""Fraction of line rate above which an interval belongs to a burst."""


@dataclass(frozen=True)
class Burst:
    """One detected burst: interval index range ``[start, end)`` of a trace.

    All per-burst figures of merit are derived lazily from the owning
    trace's arrays, so a :class:`Burst` is just a labelled slice.
    """

    trace: HostTrace
    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < self.end <= self.trace.n_intervals:
            raise ValueError(
                f"invalid burst bounds [{self.start}, {self.end}) for trace "
                f"of {self.trace.n_intervals} intervals")

    # --- extent -----------------------------------------------------------

    @property
    def n_intervals(self) -> int:
        """Number of sampling intervals the burst spans."""
        return self.end - self.start

    @property
    def duration_ms(self) -> float:
        """Burst duration in milliseconds (1 interval = the measurement
        floor: bursts shorter than one interval are indistinguishable)."""
        return self.n_intervals * self.trace.interval_ns / units.NS_PER_MS

    # --- volume ------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Ingress bytes carried by the burst."""
        return int(self.trace.ingress_bytes[self.start:self.end].sum())

    @property
    def marked_bytes(self) -> int:
        """ECN CE-marked ingress bytes within the burst."""
        return int(self.trace.marked_bytes[self.start:self.end].sum())

    @property
    def retransmit_bytes(self) -> int:
        """Retransmitted ingress bytes within the burst."""
        return int(self.trace.retransmit_bytes[self.start:self.end].sum())

    # --- rates and fractions ----------------------------------------------------

    @property
    def mean_utilization(self) -> float:
        """Mean ingress rate during the burst as a fraction of line rate."""
        return float(self.total_bytes
                     / (self.n_intervals * self.trace.interval_capacity_bytes))

    @property
    def marked_fraction(self) -> float:
        """Fraction of the burst's bytes that were CE-marked (Figure 4b)."""
        total = self.total_bytes
        return self.marked_bytes / total if total else 0.0

    @property
    def retransmit_fraction_of_line_rate(self) -> float:
        """Retransmitted volume as a fraction of what the line could have
        carried over the burst (Figure 4c's y-axis)."""
        capacity = self.n_intervals * self.trace.interval_capacity_bytes
        return self.retransmit_bytes / capacity if capacity else 0.0

    # --- flows and queueing -------------------------------------------------------

    @property
    def max_active_flows(self) -> int:
        """Peak 1 ms active flow count during the burst (Figure 2c)."""
        return int(self.trace.active_flows[self.start:self.end].max())

    @property
    def mean_active_flows(self) -> float:
        """Mean 1 ms active flow count during the burst."""
        return float(self.trace.active_flows[self.start:self.end].mean())

    @property
    def peak_queue_frac(self) -> float:
        """Peak bottleneck queue occupancy during the burst, as a fraction
        of effective capacity (Figure 4a). Zero when the trace carries no
        queue ground truth."""
        if self.trace.queue_frac is None:
            return 0.0
        return float(self.trace.queue_frac[self.start:self.end].max())

    def __repr__(self) -> str:
        return (f"Burst([{self.start},{self.end})ms, "
                f"flows<={self.max_active_flows}, "
                f"util={self.mean_utilization:.0%})")


def detect_bursts(trace: HostTrace,
                  threshold_frac: float = BURST_UTILIZATION_THRESHOLD
                  ) -> list[Burst]:
    """Find all bursts in ``trace``.

    Returns maximal runs of consecutive intervals whose utilization exceeds
    ``threshold_frac`` of line rate, in time order.
    """
    if not 0.0 < threshold_frac < 1.0:
        raise ValueError(f"threshold must be in (0, 1), got {threshold_frac}")
    above = trace.utilization() > threshold_frac
    if not above.any():
        return []
    # Run-length encode the boolean mask.
    padded = np.concatenate(([False], above, [False]))
    changes = np.flatnonzero(padded[1:] != padded[:-1])
    starts, ends = changes[0::2], changes[1::2]
    return [Burst(trace, int(s), int(e)) for s, e in zip(starts, ends)]


def burst_frequency_hz(trace: HostTrace,
                       bursts: list[Burst] | None = None) -> float:
    """Bursts per second observed in ``trace`` (Figure 2a's x-axis)."""
    if bursts is None:
        bursts = detect_bursts(trace)
    duration_s = trace.duration_ns / units.NS_PER_S
    return len(bursts) / duration_s if duration_s > 0 else 0.0
