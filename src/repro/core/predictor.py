"""Incast-degree prediction and guardrail advice (Sections 3.3 and 5.1).

The measurement study's punchline: per-service incast degree is stable over
hours and across hosts, so hosts could *predict* the scale of the next
incast and prepare, instead of reacting after queues have already built.
This module provides that predictor and the guardrail policy built on it:

- :class:`QuantileTracker` — streaming quantile estimation over a sliding
  window of per-burst flow counts;
- :class:`IncastDegreePredictor` — per-service mean (EWMA) and p99
  prediction with a stability check;
- :class:`GuardrailAdvisor` — converts a predicted degree into the
  per-flow CWND cap of :func:`repro.tcp.guardrail.guardrail_cap_bytes`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.tcp.guardrail import guardrail_cap_bytes


class QuantileTracker:
    """Sliding-window quantile estimator.

    Keeps the most recent ``window`` observations and answers arbitrary
    quantile queries. Simple and exact — burst rates are tens to hundreds
    per second, so a few thousand retained samples cover many minutes.
    """

    def __init__(self, window: int = 4096):
        if window <= 0:
            raise ValueError("window must be positive")
        self._window = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._window)

    def add(self, value: float) -> None:
        """Record one observation."""
        self._window.append(float(value))

    def extend(self, values: Iterable[float]) -> None:
        """Record many observations."""
        for value in values:
            self.add(value)

    def quantile(self, q: float) -> float:
        """The ``q`` quantile of the retained window (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if not self._window:
            return 0.0
        return float(np.quantile(np.fromiter(self._window, dtype=np.float64),
                                 q))


@dataclass
class DegreeForecast:
    """One prediction of upcoming incast scale."""

    mean: float
    p99: float
    samples: int
    stable: bool


class IncastDegreePredictor:
    """Predicts a service's next-burst incast degree from burst history.

    The mean follows an EWMA over per-burst flow counts; the p99 comes from
    a sliding window. ``stable`` reports whether recent snapshot-level means
    stayed within a relative tolerance — the precondition (validated by
    Figure 3) for acting on the prediction.
    """

    def __init__(self, ewma_gain: float = 0.05, window: int = 4096,
                 stability_history: int = 16,
                 stability_tolerance: float = 0.25):
        if not 0.0 < ewma_gain <= 1.0:
            raise ValueError("ewma_gain must be in (0, 1]")
        self._gain = ewma_gain
        self._mean: Optional[float] = None
        self._quantiles = QuantileTracker(window)
        self._snapshot_means = deque(maxlen=stability_history)
        self._tolerance = stability_tolerance
        self._samples = 0

    @property
    def samples(self) -> int:
        """Number of bursts observed."""
        return self._samples

    def observe_burst(self, flow_count: float) -> None:
        """Fold one burst's flow count into the model."""
        if flow_count < 0:
            raise ValueError("flow_count must be >= 0")
        self._samples += 1
        self._quantiles.add(flow_count)
        if self._mean is None:
            self._mean = float(flow_count)
        else:
            self._mean += self._gain * (flow_count - self._mean)

    def observe_snapshot(self, flow_counts: Iterable[float]) -> None:
        """Fold one measurement snapshot (many bursts) into the model and
        record its mean for the stability check."""
        counts = [float(f) for f in flow_counts]
        for count in counts:
            self.observe_burst(count)
        if counts:
            self._snapshot_means.append(float(np.mean(counts)))

    def is_stable(self) -> bool:
        """Whether recent snapshot means stayed within tolerance of their
        own average (the Figure 3a criterion)."""
        if len(self._snapshot_means) < 2:
            return False
        means = np.asarray(self._snapshot_means)
        center = means.mean()
        if center == 0:
            return False
        return bool(np.abs(means - center).max() / center
                    <= self._tolerance)

    def forecast(self) -> DegreeForecast:
        """Current prediction of the next burst's incast degree."""
        return DegreeForecast(
            mean=self._mean if self._mean is not None else 0.0,
            p99=self._quantiles.quantile(0.99),
            samples=self._samples,
            stable=self.is_stable(),
        )


class GuardrailAdvisor:
    """Turns degree forecasts into per-flow CWND caps (Section 5.1).

    The advisor sizes the cap for the *worst-case* expected incast (the
    p99 degree — the quantity the paper highlights as usefully stable),
    so even the largest routine burst stays in the healthy Mode 1 region.
    """

    def __init__(self, ecn_threshold_packets: int, bdp_bytes: int,
                 mss_bytes: int, headroom: float = 1.0):
        self.ecn_threshold_packets = ecn_threshold_packets
        self.bdp_bytes = bdp_bytes
        self.mss_bytes = mss_bytes
        self.headroom = headroom

    def cap_for_degree(self, flow_count: float) -> int:
        """CWND cap in bytes for an expected incast of ``flow_count``."""
        return guardrail_cap_bytes(max(1, int(round(flow_count))),
                                   self.ecn_threshold_packets,
                                   self.bdp_bytes, self.mss_bytes,
                                   headroom=self.headroom)

    def advise(self, predictor: IncastDegreePredictor) -> Optional[int]:
        """Recommended cap, or ``None`` when the service's degree history
        is too unstable (or too short) to act on."""
        forecast = predictor.forecast()
        if forecast.samples == 0 or not forecast.stable:
            return None
        return self.cap_for_degree(max(forecast.p99, 1.0))
