"""Per-burst and per-trace metric aggregation.

Collects the figures of merit that the paper's evaluation plots:
frequency, duration, flow count (Figure 2); queueing, ECN marking, and
retransmission behaviour (Figure 4); plus trace-level utilization and
incast fractions used in the prose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bursts import Burst, burst_frequency_hz, detect_bursts
from repro.core.incast import incast_fraction, low_mode_fraction
from repro.measurement.records import HostTrace


@dataclass(frozen=True)
class BurstMetrics:
    """Flat record of one burst's figures of merit.

    ``peak_queue_frac`` is the burst's own ground-truth peak occupancy;
    ``watermark_frac`` is what the production measurement would attribute
    to the burst — the switch's high-watermark counter, which is shared by
    every burst in the counter's window (Section 3.4 explains that ToRs
    record a per-minute high watermark; Figure 4a plots that value).
    """

    duration_ms: float
    max_active_flows: int
    mean_utilization: float
    marked_fraction: float
    retransmit_fraction: float
    peak_queue_frac: float
    watermark_frac: float
    total_bytes: int

    @classmethod
    def from_burst(cls, burst: Burst,
                   watermark_frac: float = 0.0) -> "BurstMetrics":
        """Extract metrics from a detected burst."""
        return cls(
            duration_ms=burst.duration_ms,
            max_active_flows=burst.max_active_flows,
            mean_utilization=burst.mean_utilization,
            marked_fraction=burst.marked_fraction,
            retransmit_fraction=burst.retransmit_fraction_of_line_rate,
            peak_queue_frac=burst.peak_queue_frac,
            watermark_frac=watermark_frac,
            total_bytes=burst.total_bytes,
        )


@dataclass(frozen=True)
class TraceSummary:
    """One capture's burst-level summary."""

    service: str
    host_id: int
    snapshot_index: int
    n_bursts: int
    burst_frequency_hz: float
    mean_utilization: float
    incast_fraction: float
    low_mode_fraction: float
    bursts: tuple[BurstMetrics, ...]

    @property
    def flow_counts(self) -> np.ndarray:
        """Per-burst peak flow counts."""
        return np.asarray([b.max_active_flows for b in self.bursts])

    @property
    def durations_ms(self) -> np.ndarray:
        """Per-burst durations in milliseconds."""
        return np.asarray([b.duration_ms for b in self.bursts])

    @property
    def marked_fractions(self) -> np.ndarray:
        """Per-burst ECN-marked byte fractions."""
        return np.asarray([b.marked_fraction for b in self.bursts])

    @property
    def retransmit_fractions(self) -> np.ndarray:
        """Per-burst retransmitted fractions of line rate."""
        return np.asarray([b.retransmit_fraction for b in self.bursts])

    @property
    def peak_queue_fracs(self) -> np.ndarray:
        """Per-burst peak queue occupancy fractions (ground truth)."""
        return np.asarray([b.peak_queue_frac for b in self.bursts])

    @property
    def watermark_fracs(self) -> np.ndarray:
        """Per-burst queue occupancy as a high-watermark counter reports it
        (Figure 4a's semantics)."""
        return np.asarray([b.watermark_frac for b in self.bursts])

    def mean_flow_count(self) -> float:
        """Mean per-burst flow count (Figure 3's y-axis)."""
        flows = self.flow_counts
        return float(flows.mean()) if flows.size else 0.0

    def p99_flow_count(self) -> float:
        """99th-percentile per-burst flow count (Figure 3b)."""
        flows = self.flow_counts
        return float(np.percentile(flows, 99)) if flows.size else 0.0


def summarize_trace(trace: HostTrace) -> TraceSummary:
    """Detect bursts in ``trace`` and aggregate their metrics."""
    bursts = detect_bursts(trace)
    # High-watermark semantics: every burst in the counter window reports
    # the window's maximum occupancy (the trace sits inside one window).
    if trace.queue_frac is not None and len(trace.queue_frac):
        watermark = float(np.max(trace.queue_frac))
    else:
        watermark = max((b.peak_queue_frac for b in bursts), default=0.0)
    return TraceSummary(
        service=trace.meta.service,
        host_id=trace.meta.host_id,
        snapshot_index=trace.meta.snapshot_index,
        n_bursts=len(bursts),
        burst_frequency_hz=burst_frequency_hz(trace, bursts),
        mean_utilization=trace.mean_utilization(),
        incast_fraction=incast_fraction(bursts),
        low_mode_fraction=low_mode_fraction(bursts),
        bursts=tuple(BurstMetrics.from_burst(b, watermark_frac=watermark)
                     for b in bursts),
    )
