"""Sub-incast admission scheduling (Section 5.2 design direction).

The paper's discussion proposes dividing a large incast into "a series of
smaller incasts where only a manageable number of flows are active at once",
so each active flow operates in a healthy CWND regime. This module
implements that receiver-driven scheduler: the flow set is partitioned into
admission groups of at most ``group_size`` flows; a burst releases group
g+1's demand only when every flow of group g has delivered its share.

This is the paper's envisioned *enhancement* to TCP (not a replacement):
flows still run their normal CCA; only the time at which each worker's
response is requested changes — exactly the lever a partition/aggregate
coordinator controls.

Ablation C compares a 500-flow monolithic incast against the same demand
scheduled as 5 groups of 100.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator
from repro.tcp.connection import TcpReceiver, TcpSender


@dataclass
class SchedulerConfig:
    """Parameters of the sub-incast scheduler."""

    group_size: int = 100
    n_bursts: int = 11
    start_jitter_ns: int = units.usec(100.0)
    inter_burst_gap_ns: int = units.msec(5.0)
    inter_group_gap_ns: int = 0
    discard_first_burst: bool = True

    def __post_init__(self) -> None:
        if self.group_size <= 0:
            raise ValueError("group_size must be positive")
        if self.n_bursts <= 0:
            raise ValueError("n_bursts must be positive")


@dataclass
class ScheduledBurstResult:
    """Measurements for one scheduled (multi-group) burst."""

    index: int
    start_ns: int
    complete_ns: int
    n_groups: int
    peak_queue_packets: int
    drops: int
    rto_events: int

    @property
    def bct_ns(self) -> int:
        """Time from burst start until the last group completes."""
        return self.complete_ns - self.start_ns

    @property
    def bct_ms(self) -> float:
        """Burst completion time in milliseconds."""
        return units.ns_to_ms(self.bct_ns)


class IncastScheduler:
    """Runs cyclic incast bursts with staged group admission.

    The scheduler mirrors :class:`~repro.workloads.incast.IncastWorkload`'s
    cyclic structure, but inside each burst, demand is released one
    admission group at a time.
    """

    def __init__(self, sim: Simulator,
                 connections: list[tuple[TcpSender, TcpReceiver]],
                 config: SchedulerConfig, rng: np.random.Generator,
                 queue: DropTailQueue, demand_bytes_per_flow: int):
        if not connections:
            raise ValueError("need at least one connection")
        if demand_bytes_per_flow <= 0:
            raise ValueError("demand must be positive")
        self._sim = sim
        self._senders = [s for s, _ in connections]
        self._receivers = [r for _, r in connections]
        self.config = config
        self._rng = rng
        self._queue = queue
        self.demand_bytes_per_flow = demand_bytes_per_flow
        self._groups = self._partition(len(connections), config.group_size)
        self.results: list[ScheduledBurstResult] = []
        self._burst_index = 0
        self._group_index = 0
        self._burst_start_ns = 0
        self._stats_mark = (0, 0)
        self._done = False
        for receiver in self._receivers:
            receiver.add_delivery_hook(self._on_delivery)

    @staticmethod
    def _partition(n_flows: int, group_size: int) -> list[list[int]]:
        indices = list(range(n_flows))
        return [indices[i:i + group_size]
                for i in range(0, n_flows, group_size)]

    @property
    def n_groups(self) -> int:
        """Number of admission groups per burst."""
        return len(self._groups)

    @property
    def done(self) -> bool:
        """Whether all configured bursts have completed."""
        return self._done

    # --- burst/group launch -------------------------------------------------

    def start(self, at_ns: Optional[int] = None) -> None:
        """Schedule the first burst (now by default)."""
        self._sim.schedule_at(self._sim.now if at_ns is None else at_ns,
                              self._launch_burst)

    def _launch_burst(self) -> None:
        self._burst_start_ns = self._sim.now
        self._group_index = 0
        self._queue.stats.reset_watermark()
        stats = self._queue.stats
        self._stats_mark = (stats.dropped_packets,
                            sum(s.stats.rto_events for s in self._senders))
        self._launch_group(0)

    def _launch_group(self, group: int) -> None:
        for flow_index in self._groups[group]:
            jitter = (int(self._rng.uniform(0, self.config.start_jitter_ns))
                      if self.config.start_jitter_ns > 0 else 0)
            self._sim.schedule(jitter, self._senders[flow_index].send,
                               (self.demand_bytes_per_flow,))

    # --- completion tracking ----------------------------------------------------

    def _target(self) -> int:
        return self.demand_bytes_per_flow * (self._burst_index + 1)

    def _group_complete(self, group: int) -> bool:
        target = self._target()
        return all(self._receivers[i].delivered_bytes >= target
                   for i in self._groups[group])

    def _on_delivery(self, _delivered: int) -> None:
        if self._done:
            return
        while (self._group_index < len(self._groups)
               and self._group_complete(self._group_index)):
            self._group_index += 1
            if self._group_index < len(self._groups):
                self._sim.schedule(self.config.inter_group_gap_ns,
                                   self._launch_group, (self._group_index,))
                return
        if self._group_index >= len(self._groups):
            self._finish_burst()

    def _finish_burst(self) -> None:
        drops0, rto0 = self._stats_mark
        stats = self._queue.stats
        self.results.append(ScheduledBurstResult(
            index=self._burst_index,
            start_ns=self._burst_start_ns,
            complete_ns=self._sim.now,
            n_groups=len(self._groups),
            peak_queue_packets=stats.max_len_packets,
            drops=stats.dropped_packets - drops0,
            rto_events=(sum(s.stats.rto_events for s in self._senders)
                        - rto0),
        ))
        self._burst_index += 1
        if self._burst_index >= self.config.n_bursts:
            self._done = True
        else:
            self._sim.schedule(self.config.inter_burst_gap_ns,
                               self._launch_burst)

    # --- analysis -------------------------------------------------------------

    def steady_results(self) -> list[ScheduledBurstResult]:
        """Results with the first burst discarded (slow-start transient)."""
        if self.config.discard_first_burst and len(self.results) > 1:
            return self.results[1:]
        return list(self.results)

    def mean_bct_ms(self) -> float:
        """Average BCT over the steady bursts."""
        steady = self.steady_results()
        if not steady:
            return 0.0
        return float(np.mean([r.bct_ms for r in steady]))
