"""Partition/aggregate request-response application.

The paper's introduction motivates incast with this pattern: "a coordinator
server dispatches up to thousands of sub-tasks to worker servers and waits
for their replies", with fan-in chosen by service architects. Where
:class:`~repro.workloads.incast.IncastWorkload` injects response demand
directly at the senders (the paper's Section 4 abstraction), this module
models the full RPC loop:

- the coordinator (the incast *receiver*) sends a small request message to
  every worker over a reverse TCP connection;
- each worker "processes" for a random service time, then sends its
  response bytes over the forward connection;
- the query completes when every response is fully delivered; the
  coordinator waits a think time and issues the next query.

The jitter the paper models as a uniform 0-100 us start offset emerges
here from request serialization, network delay, and worker service-time
variation. The workload reports per-query completion times (QCT) — the
service-level latency metric the paper says incast tail losses damage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.netsim.topology import Dumbbell
from repro.simcore.kernel import Simulator
from repro.tcp.config import TcpConfig
from repro.tcp.connection import TcpReceiver, TcpSender, open_connection


@dataclass
class PartitionAggregateConfig:
    """Parameters of the request-response workload."""

    n_queries: int = 5
    request_bytes: int = 200
    response_bytes: int = 20_000
    response_jitter_frac: float = 0.1
    service_time_mean_ns: int = units.usec(30.0)
    service_time_jitter_ns: int = units.usec(70.0)
    think_time_ns: int = units.msec(5.0)
    discard_first_query: bool = True

    def __post_init__(self) -> None:
        if self.n_queries <= 0:
            raise ValueError("n_queries must be positive")
        if self.request_bytes <= 0 or self.response_bytes <= 0:
            raise ValueError("request/response sizes must be positive")
        if not 0.0 <= self.response_jitter_frac < 1.0:
            raise ValueError("response_jitter_frac must be in [0, 1)")


@dataclass
class QueryResult:
    """Timing of one completed query."""

    index: int
    issued_ns: int
    completed_ns: int
    n_workers: int

    @property
    def qct_ns(self) -> int:
        """Query completion time: last response byte minus issue time."""
        return self.completed_ns - self.issued_ns

    @property
    def qct_ms(self) -> float:
        """Query completion time in milliseconds."""
        return units.ns_to_ms(self.qct_ns)


@dataclass
class _WorkerChannel:
    """Both directions of one coordinator<->worker pairing."""

    request_tx: TcpSender        # coordinator -> worker (requests)
    request_rx: TcpReceiver      # at the worker
    response_tx: TcpSender       # worker -> coordinator (responses)
    response_rx: TcpReceiver     # at the coordinator
    requests_received: int = 0
    responses_sent: int = 0
    response_bytes_expected: int = 0


class PartitionAggregateWorkload:
    """Drives repeated partition/aggregate queries.

    By default the dumbbell's single receiver acts as the coordinator and
    every sender host is a worker; :meth:`over_hosts` builds the workload
    on any host set (e.g. one receiver group of a multi-receiver rack).
    Call :meth:`start`, run the simulator, then read :attr:`results`.
    """

    def __init__(self, sim: Simulator, network: Optional[Dumbbell],
                 config: PartitionAggregateConfig,
                 tcp_config: TcpConfig, cca_factory,
                 rng: np.random.Generator,
                 workers: Optional[list] = None,
                 coordinator=None):
        if network is not None:
            workers = network.senders
            coordinator = network.receiver
        if not workers or coordinator is None:
            raise ValueError("provide a network, or workers + coordinator")
        self._sim = sim
        self.coordinator = coordinator
        self.config = config
        self._rng = rng
        self._channels: list[_WorkerChannel] = []
        for worker in workers:
            request_tx, request_rx = open_connection(
                sim, tcp_config, cca_factory(), coordinator, worker)
            response_tx, response_rx = open_connection(
                sim, tcp_config, cca_factory(), worker, coordinator)
            channel = _WorkerChannel(request_tx, request_rx, response_tx,
                                     response_rx)
            request_rx.add_delivery_hook(
                self._request_hook(channel))
            response_rx.add_delivery_hook(
                self._response_hook(channel))
            self._channels.append(channel)
        self.results: list[QueryResult] = []
        self._query_index = -1
        self._issued_ns = 0
        self._done = False

    @classmethod
    def over_hosts(cls, sim: Simulator, workers: list, coordinator,
                   config: PartitionAggregateConfig, tcp_config: TcpConfig,
                   cca_factory, rng: np.random.Generator
                   ) -> "PartitionAggregateWorkload":
        """Build the workload on an explicit worker set and coordinator."""
        return cls(sim, None, config, tcp_config, cca_factory, rng,
                   workers=workers, coordinator=coordinator)

    # --- lifecycle -----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every configured query has completed."""
        return self._done

    @property
    def n_workers(self) -> int:
        """Fan-in degree."""
        return len(self._channels)

    def start(self, at_ns: Optional[int] = None) -> None:
        """Issue the first query (now by default)."""
        self._sim.schedule_at(self._sim.now if at_ns is None else at_ns,
                              self._issue_query)

    def _issue_query(self) -> None:
        self._query_index += 1
        self._issued_ns = self._sim.now
        for channel in self._channels:
            channel.request_tx.send(self.config.request_bytes)

    # --- worker side -----------------------------------------------------------

    def _request_hook(self, channel: _WorkerChannel):
        def on_request_bytes(delivered: int) -> None:
            expected = self.config.request_bytes \
                * (channel.requests_received + 1)
            while delivered >= expected:
                channel.requests_received += 1
                expected += self.config.request_bytes
                self._schedule_response(channel)
        return on_request_bytes

    def _schedule_response(self, channel: _WorkerChannel) -> None:
        service = self.config.service_time_mean_ns
        if self.config.service_time_jitter_ns > 0:
            service += int(self._rng.uniform(
                0, self.config.service_time_jitter_ns))
        self._sim.schedule(max(service, 0), self._send_response, (channel,))

    def _send_response(self, channel: _WorkerChannel) -> None:
        size = self.config.response_bytes
        if self.config.response_jitter_frac > 0:
            spread = self.config.response_jitter_frac
            size = max(1, int(size * self._rng.uniform(1 - spread,
                                                       1 + spread)))
        channel.responses_sent += 1
        channel.response_bytes_expected += size
        channel.response_tx.send(size)

    # --- coordinator side ---------------------------------------------------------

    def _response_hook(self, channel: _WorkerChannel):
        def on_response_bytes(_delivered: int) -> None:
            if not self._done and self._query_complete():
                self._finish_query()
        return on_response_bytes

    def _query_complete(self) -> bool:
        for channel in self._channels:
            if channel.responses_sent <= self._query_index:
                return False
            if (channel.response_rx.delivered_bytes
                    < channel.response_bytes_expected):
                return False
        return True

    def _finish_query(self) -> None:
        self.results.append(QueryResult(
            index=self._query_index,
            issued_ns=self._issued_ns,
            completed_ns=self._sim.now,
            n_workers=self.n_workers,
        ))
        if self._query_index + 1 >= self.config.n_queries:
            self._done = True
            return
        self._sim.schedule(self.config.think_time_ns, self._issue_query)

    # --- analysis ---------------------------------------------------------------

    def steady_results(self) -> list[QueryResult]:
        """Results with the first query discarded (slow-start transient)."""
        if self.config.discard_first_query and len(self.results) > 1:
            return self.results[1:]
        return list(self.results)

    def qct_percentiles(self, percentiles=(50.0, 99.0)) -> dict[float, float]:
        """QCT percentiles (ms) over the steady queries."""
        steady = self.steady_results()
        if not steady:
            return {p: 0.0 for p in percentiles}
        qcts = np.asarray([r.qct_ms for r in steady])
        return {p: float(np.percentile(qcts, p)) for p in percentiles}
