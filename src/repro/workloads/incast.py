"""The cyclic incast burst application (Section 4).

A coordinator dispatches work to N workers; their roughly synchronized
responses form one *burst*. This module drives N persistent TCP connections
through a configurable number of such bursts:

- every flow receives *equal demand* per burst, sized so that the aggregate
  equals ``bottleneck_rate * burst_duration`` (the paper's setup);
- per-flow start times within a burst are jittered uniformly over 0-100 us
  to model variation in worker processing time;
- connections persist across bursts, so congestion-window state carries
  over — the precondition for the straggler divergence of Section 4.3;
- burst k+1 starts either a fixed gap after burst k *completes* (the
  partition/aggregate pattern: the coordinator waits for all replies), or on
  a fixed period regardless of completion.

Per burst, the workload records start/completion times, burst completion
time (BCT), the bottleneck queue's peak occupancy, and drop/mark/retransmit
deltas. A :class:`FlowStateSampler` can additionally sample every flow's
in-flight bytes on a fixed period (Figure 7).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import units
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator
from repro.simcore.trace import TimeSeries
from repro.tcp.connection import TcpReceiver, TcpSender


class BurstScheduling(enum.Enum):
    """How successive bursts are launched."""

    AFTER_COMPLETION = "after_completion"
    FIXED_PERIOD = "fixed_period"


def demand_per_flow_bytes(bottleneck_rate_bps: float, burst_duration_ns: int,
                          n_flows: int) -> int:
    """Equal per-flow demand such that the burst's aggregate volume matches
    ``bottleneck_rate * duration`` (the paper's construction)."""
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    total = units.bytes_in_interval(bottleneck_rate_bps, burst_duration_ns)
    return max(1, total // n_flows)


@dataclass
class IncastConfig:
    """Parameters of the cyclic burst workload (defaults = the paper's)."""

    n_bursts: int = 11
    burst_duration_ns: int = units.msec(15.0)
    start_jitter_ns: int = units.usec(100.0)
    inter_burst_gap_ns: int = units.msec(5.0)
    scheduling: BurstScheduling = BurstScheduling.AFTER_COMPLETION
    period_ns: Optional[int] = None
    demand_bytes_per_flow: Optional[int] = None
    discard_first_burst: bool = True

    def __post_init__(self) -> None:
        if self.n_bursts <= 0:
            raise ValueError("n_bursts must be positive")
        if self.burst_duration_ns <= 0:
            raise ValueError("burst_duration_ns must be positive")
        if self.start_jitter_ns < 0:
            raise ValueError("start_jitter_ns must be >= 0")
        if (self.scheduling is BurstScheduling.FIXED_PERIOD
                and self.period_ns is None):
            raise ValueError("fixed-period scheduling requires period_ns")


@dataclass
class BurstResult:
    """Measurements for one completed burst."""

    index: int
    start_ns: int
    complete_ns: int
    demand_bytes_per_flow: int
    n_flows: int
    peak_queue_packets: int
    drops: int
    marked_packets: int
    retransmitted_packets: int
    rto_events: int
    fast_retransmits: int

    @property
    def bct_ns(self) -> int:
        """Burst completion time: last delivery minus burst start."""
        return self.complete_ns - self.start_ns

    @property
    def bct_ms(self) -> float:
        """Burst completion time in milliseconds."""
        return units.ns_to_ms(self.bct_ns)

    @property
    def total_bytes(self) -> int:
        """Aggregate payload delivered by the burst."""
        return self.demand_bytes_per_flow * self.n_flows


class FlowStateSampler:
    """Samples per-flow in-flight bytes on a fixed period (Figure 7).

    Each sample stores the simulation time and, for every flow, its
    in-flight byte count plus whether the flow was *active* (had
    unacknowledged or unsent demand) at that instant.
    """

    def __init__(self, sim: Simulator, senders: list[TcpSender],
                 period_ns: int = units.usec(100.0)):
        if period_ns <= 0:
            raise ValueError("period must be positive")
        self._sim = sim
        self._senders = senders
        self._period_ns = period_ns
        self.times_ns: list[int] = []
        self.inflight: list[np.ndarray] = []
        self.active: list[np.ndarray] = []
        self._running = False

    def start(self) -> None:
        """Begin sampling now."""
        if not self._running:
            self._running = True
            self._tick()

    def stop(self) -> None:
        """Stop sampling at the next tick."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.times_ns.append(self._sim.now)
        self.inflight.append(np.fromiter(
            (s.inflight_bytes for s in self._senders), dtype=np.int64,
            count=len(self._senders)))
        self.active.append(np.fromiter(
            (s.active for s in self._senders), dtype=bool,
            count=len(self._senders)))
        # Fire-and-forget: stop() works by flag, never by cancellation, so
        # the pooled no-handle path serves (and allocates nothing).
        self._sim.schedule_fire(self._period_ns, self._tick)

    def __getstate__(self) -> dict:
        # The sampler is pickled as part of work-unit payloads crossing
        # process boundaries in the experiment engine. The captured samples
        # travel; the live simulator/sender graph (unpicklable and huge)
        # does not — an unpickled sampler is a read-only record.
        state = self.__dict__.copy()
        state["_sim"] = None
        state["_senders"] = []
        state["_running"] = False
        return state

    def active_percentiles(self, percentiles: list[float]
                           ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-sample percentiles of in-flight bytes across *active* flows.

        Returns ``(times_ns, mean, pct)`` where ``pct`` has one row per
        requested percentile. Samples with no active flow yield zeros.
        """
        times = np.asarray(self.times_ns, dtype=np.int64)
        means = np.zeros(len(times))
        pcts = np.zeros((len(percentiles), len(times)))
        for i, (vals, act) in enumerate(zip(self.inflight, self.active)):
            live = vals[act]
            if live.size:
                means[i] = live.mean()
                pcts[:, i] = np.percentile(live, percentiles)
        return times, means, pcts


class IncastWorkload:
    """Drives N persistent connections through cyclic incast bursts.

    Usage::

        workload = IncastWorkload(sim, conns, config, rng,
                                  queue=net.bottleneck_queue)
        workload.start()
        sim.run()
        results = workload.results

    The workload schedules everything through the simulator, so callers can
    freely co-run probes and other traffic.
    """

    def __init__(self, sim: Simulator,
                 connections: list[tuple[TcpSender, TcpReceiver]],
                 config: IncastConfig, rng: np.random.Generator,
                 queue: DropTailQueue,
                 demand_bytes_per_flow: Optional[int] = None):
        if not connections:
            raise ValueError("need at least one connection")
        self._sim = sim
        self._senders = [s for s, _ in connections]
        self._receivers = [r for _, r in connections]
        self.config = config
        self._rng = rng
        self._queue = queue
        demand = (demand_bytes_per_flow
                  if demand_bytes_per_flow is not None
                  else config.demand_bytes_per_flow)
        if demand is None:
            raise ValueError("demand_bytes_per_flow must be given either in "
                             "the config or as an argument")
        self.demand_bytes_per_flow = demand
        self.results: list[BurstResult] = []
        self.burst_starts_ns: list[int] = []
        self._done_callbacks: list = []
        self.queue_series = TimeSeries("bottleneck_queue_packets")
        self._burst_index = -1
        self._completing_index = 0
        self._done = False
        self._stats_marks = self._snapshot_stats()
        # Completion is tracked with O(1) per-delivery counters: receiver i
        # has "level" floor(delivered / demand) — burst k is complete once
        # every receiver's level is > k (delivered >= demand * (k+1), the
        # same integer comparison _burst_target expressed). Scanning all N
        # receivers on every delivered segment is quadratic in flow count.
        self._levels = [0] * len(self._receivers)
        self._level_done: dict[int, int] = {}
        for index, receiver in enumerate(self._receivers):
            receiver.add_delivery_hook(self._make_delivery_hook(index))

    # --- lifecycle -----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every configured burst has completed."""
        return self._done

    def add_done_callback(self, callback) -> None:
        """Invoke ``callback()`` once when the final burst completes
        (used to stop probes so the simulation drains promptly)."""
        self._done_callbacks.append(callback)

    @property
    def n_flows(self) -> int:
        """Number of participating flows."""
        return len(self._senders)

    def start(self, at_ns: Optional[int] = None) -> None:
        """Schedule the workload's bursts, starting at ``at_ns`` (now by
        default)."""
        first = self._sim.now if at_ns is None else at_ns
        if self.config.scheduling is BurstScheduling.FIXED_PERIOD:
            assert self.config.period_ns is not None
            for index in range(self.config.n_bursts):
                self._sim.schedule_at(first + index * self.config.period_ns,
                                      self._launch_burst, (index,))
        else:
            self._sim.schedule_at(first, self._launch_burst, (0,))

    def _launch_burst(self, index: int) -> None:
        self._burst_index = max(self._burst_index, index)
        self.burst_starts_ns.append(self._sim.now)
        self._queue.stats.reset_watermark()
        for sender in self._senders:
            jitter = (int(self._rng.uniform(0, self.config.start_jitter_ns))
                      if self.config.start_jitter_ns > 0 else 0)
            self._sim.schedule(jitter, sender.send,
                               (self.demand_bytes_per_flow,))

    # --- completion tracking ----------------------------------------------------

    def _burst_target(self, index: int) -> int:
        return self.demand_bytes_per_flow * (index + 1)

    def _make_delivery_hook(self, index: int):
        demand = self.demand_bytes_per_flow
        levels = self._levels
        level_done = self._level_done

        def hook(delivered: int, _index: int = index) -> None:
            level = delivered // demand
            prev = levels[_index]
            if level > prev:
                levels[_index] = level
                for k in range(prev + 1, level + 1):
                    level_done[k] = level_done.get(k, 0) + 1
                self._on_level_crossed()

        return hook

    def _on_level_crossed(self) -> None:
        n = len(self._receivers)
        level_done = self._level_done
        while (self._completing_index <= self._burst_index
               and not self._done
               and level_done.get(self._completing_index + 1, 0) >= n):
            self._finish_burst(self._completing_index)
            self._completing_index += 1

    def _snapshot_stats(self) -> tuple[int, int, int, int, int]:
        stats = self._queue.stats
        return (stats.dropped_packets, stats.marked_packets,
                sum(s.stats.retransmitted_packets for s in self._senders),
                sum(s.stats.rto_events for s in self._senders),
                sum(s.stats.fast_retransmits for s in self._senders))

    def _finish_burst(self, index: int) -> None:
        drops0, marks0, rtx0, rto0, frx0 = self._stats_marks
        drops1, marks1, rtx1, rto1, frx1 = self._snapshot_stats()
        self._stats_marks = (drops1, marks1, rtx1, rto1, frx1)
        self.results.append(BurstResult(
            index=index,
            start_ns=self.burst_starts_ns[index],
            complete_ns=self._sim.now,
            demand_bytes_per_flow=self.demand_bytes_per_flow,
            n_flows=self.n_flows,
            peak_queue_packets=self._queue.stats.max_len_packets,
            drops=drops1 - drops0,
            marked_packets=marks1 - marks0,
            retransmitted_packets=rtx1 - rtx0,
            rto_events=rto1 - rto0,
            fast_retransmits=frx1 - frx0,
        ))
        if index + 1 >= self.config.n_bursts:
            self._done = True
            for callback in self._done_callbacks:
                callback()
            return
        if self.config.scheduling is BurstScheduling.AFTER_COMPLETION:
            self._sim.schedule(self.config.inter_burst_gap_ns,
                               self._launch_burst, (index + 1,))

    # --- analysis helpers ---------------------------------------------------------

    def steady_results(self) -> list[BurstResult]:
        """Results with the first burst discarded (slow-start transient),
        per the paper's methodology."""
        if self.config.discard_first_burst and len(self.results) > 1:
            return self.results[1:]
        return list(self.results)

    def mean_bct_ms(self) -> float:
        """Average BCT over the steady bursts."""
        steady = self.steady_results()
        if not steady:
            return 0.0
        return float(np.mean([r.bct_ms for r in steady]))
