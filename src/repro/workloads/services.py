"""Synthetic production-service fleet (Section 3 substrate).

The paper instruments five Meta services with Millisampler. Production
traces are proprietary, so this module generates synthetic host traces from
a partition/aggregate burst model whose parameters are calibrated to the
distributions the paper reports (Figures 1-4), then drives every burst
through the fluid ToR bottleneck (:mod:`repro.netsim.fluid`) so that ECN
marking, queue buildup, and retransmissions *emerge from queueing dynamics*
rather than being sampled from target distributions.

Per-burst draws and what they model:

- **arrival time** — Poisson burst arrivals; per-host rate multipliers give
  the cross-host spread of Figure 2a (tens to ~200 bursts/s).
- **duration** — truncated-geometric burst volume: ~60% of bursts last
  1-2 ms, with a tail to 20 ms (Figure 2b).
- **flow count** — lognormal incast degree, optionally with a low "cliff"
  mode for bimodal services (storage and aggregator, whose checkpoint-like
  tasks use < 20 flows), capped at 600 (Figure 2c); "video" alternates
  between two operating regimes (~225 and ~275 flows) across snapshots as
  its scheduler spools workers up and down (Figure 3a).
- **synchronization** — how tightly the worker responses align, expressed
  as the peak aggregate arrival rate in multiples of line rate. Loosely
  synchronized bursts (factor <= 1) saturate the link without queueing —
  the ~half of production bursts that never mark (Figure 4b).
- **window carryover** — CWND state retained from previous bursts
  (straggler ramp-up, Section 4.3), which sets the initial queue spike.
- **contention** — rack-level buffer sharing that shrinks the capacity
  effectively available to this host's queue (Sections 3.4 and 4.1.1),
  the main source of the rare-but-catastrophic drops of Figure 4c.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.measurement.records import HostTrace, TraceMeta
from repro.netsim.fluid import FluidConfig, FluidIncast


@dataclass(frozen=True)
class ServiceProfile:
    """Calibrated burst statistics of one production service."""

    name: str
    description: str
    burst_rate_hz: float
    duration_geom_p: float
    flow_median: float
    flow_sigma: float
    sync_log_mean: float
    low_mode_weight: float = 0.0
    low_mode_range: tuple[int, int] = (2, 20)
    flow_cap: int = 600
    max_duration_ms: int = 20
    sync_log_sigma: float = 0.35
    carryover_log_mean: float = np.log(1.8)
    carryover_log_sigma: float = 0.55
    contention_beta: tuple[float, float] = (0.9, 3.2)
    background_util_range: tuple[float, float] = (0.002, 0.02)
    host_rate_sigma: float = 0.45
    regime_flow_medians: Optional[tuple[float, ...]] = None
    regime_switch_prob: float = 0.35

    # --- per-burst draws ---------------------------------------------------

    def sample_duration_ms(self, rng: np.random.Generator) -> int:
        """Nominal burst duration in milliseconds (truncated geometric)."""
        d = int(rng.geometric(self.duration_geom_p))
        return min(max(d, 1), self.max_duration_ms)

    def sample_flow_count(self, rng: np.random.Generator,
                          regime_median: Optional[float] = None) -> int:
        """Incast degree for one burst."""
        if self.low_mode_weight > 0 and rng.random() < self.low_mode_weight:
            lo, hi = self.low_mode_range
            return int(rng.integers(lo, hi + 1))
        median = regime_median if regime_median is not None \
            else self.flow_median
        count = rng.lognormal(np.log(median), self.flow_sigma)
        return int(np.clip(count, 1, self.flow_cap))

    def sample_sync_factor(self, rng: np.random.Generator) -> float:
        """Peak arrival rate as a multiple of line rate."""
        return float(np.exp(rng.normal(self.sync_log_mean,
                                       self.sync_log_sigma)))

    def sample_carryover(self, rng: np.random.Generator) -> float:
        """Initial aggregate window in multiples of the K*MSS floor,
        capped at 3.5 (persistent connections rarely carry more than a few
        segments per flow into the next burst, Figure 7)."""
        draw = np.exp(rng.normal(self.carryover_log_mean,
                                 self.carryover_log_sigma))
        return float(np.clip(draw, 0.1, 3.5))

    def sample_contention(self, rng: np.random.Generator) -> float:
        """Fraction of the shared buffer consumed by other ports."""
        a, b = self.contention_beta
        return float(rng.beta(a, b))

    def regime_median(self, regime_index: int) -> Optional[float]:
        """Flow-count median of operating regime ``regime_index``."""
        if self.regime_flow_medians is None:
            return None
        return self.regime_flow_medians[
            regime_index % len(self.regime_flow_medians)]


SERVICE_PROFILES: dict[str, ServiceProfile] = {
    "storage": ServiceProfile(
        name="storage",
        description="Distributed key-value store",
        burst_rate_hz=35.0,
        duration_geom_p=0.42,
        flow_median=80.0,
        flow_sigma=0.50,
        low_mode_weight=0.45,
        sync_log_mean=np.log(0.98),
        carryover_log_mean=np.log(1.6),
    ),
    "aggregator": ServiceProfile(
        name="aggregator",
        description="Collects content to display on a page",
        burst_rate_hz=55.0,
        duration_geom_p=0.40,
        flow_median=160.0,
        flow_sigma=0.45,
        low_mode_weight=0.10,
        sync_log_mean=np.log(1.12),
        carryover_log_mean=np.log(2.3),
        carryover_log_sigma=0.60,
    ),
    "indexer": ServiceProfile(
        name="indexer",
        description="Indexing service for recommendations",
        burst_rate_hz=130.0,
        duration_geom_p=0.45,
        flow_median=60.0,
        flow_sigma=0.45,
        sync_log_mean=np.log(0.93),
        sync_log_sigma=0.30,
    ),
    "messaging": ServiceProfile(
        name="messaging",
        description="Distributed real-time messaging system",
        burst_rate_hz=18.0,
        duration_geom_p=0.50,
        flow_median=35.0,
        flow_sigma=0.50,
        sync_log_mean=np.log(0.82),
        sync_log_sigma=0.28,
        carryover_log_mean=np.log(1.4),
        carryover_log_sigma=0.45,
    ),
    "video": ServiceProfile(
        name="video",
        description="Video analytics service",
        burst_rate_hz=60.0,
        duration_geom_p=0.35,
        flow_median=250.0,
        flow_sigma=0.25,
        sync_log_mean=np.log(1.12),
        carryover_log_mean=np.log(2.0),
        regime_flow_medians=(225.0, 275.0),
    ),
}
"""The paper's Table 1 services, with calibrated burst parameters."""


def service_names() -> list[str]:
    """Names of the five profiled services, in Table 1 order."""
    return list(SERVICE_PROFILES)


def regime_sequence(profile: ServiceProfile, n_snapshots: int,
                    rng: np.random.Generator) -> list[int]:
    """Operating-regime index per snapshot (Markov switching). Services
    without regimes stay at index 0."""
    if profile.regime_flow_medians is None:
        return [0] * n_snapshots
    sequence = [int(rng.integers(0, len(profile.regime_flow_medians)))]
    for _ in range(n_snapshots - 1):
        current = sequence[-1]
        if rng.random() < profile.regime_switch_prob:
            current = (current + 1) % len(profile.regime_flow_medians)
        sequence.append(current)
    return sequence


def host_rate_multiplier(profile: ServiceProfile,
                         rng: np.random.Generator) -> float:
    """Per-host burst-rate multiplier (cross-host spread of Figure 2a)."""
    return float(np.exp(rng.normal(0.0, profile.host_rate_sigma)))


def generate_host_trace(profile: ServiceProfile, meta: TraceMeta,
                        rng: np.random.Generator,
                        duration_ms: int = 2000,
                        fluid_config: Optional[FluidConfig] = None,
                        regime_index: int = 0,
                        rate_multiplier: float = 1.0) -> HostTrace:
    """Generate one Millisampler-style capture for one host.

    Bursts arrive Poisson at the host's effective rate; each burst is
    played through the fluid bottleneck and its per-interval deliveries,
    marks, retransmissions, and queue occupancy are written into the trace.
    """
    cfg = fluid_config or FluidConfig()
    drain = cfg.drain_bytes_per_interval
    n = duration_ms
    ingress = np.zeros(n, dtype=np.int64)
    flows = np.zeros(n, dtype=np.int64)
    marked = np.zeros(n, dtype=np.int64)
    retx = np.zeros(n, dtype=np.int64)
    queue_frac = np.zeros(n, dtype=np.float64)

    rate_hz = profile.burst_rate_hz * rate_multiplier
    regime_med = profile.regime_median(regime_index)

    t = 0.0
    while True:
        gap_ms = rng.exponential(1000.0 / max(rate_hz, 1e-6))
        t += max(gap_ms, 1.0)
        start = int(t)
        if start >= n:
            break
        duration = profile.sample_duration_ms(rng)
        flow_count = profile.sample_flow_count(rng, regime_med)
        sync = profile.sample_sync_factor(rng)
        carryover = profile.sample_carryover(rng)
        contention = profile.sample_contention(rng)
        effective_cap = max(cfg.capacity_bytes * (1.0 - contention),
                            0.25 * cfg.capacity_bytes)
        volume = max(int(drain * duration * min(sync, 1.0)
                         * rng.normal(0.97, 0.04)),
                     int(0.6 * drain))
        burst = FluidIncast(cfg, flow_count, volume, effective_cap,
                            window_start_factor=carryover,
                            arrival_rate_factor=sync).run()
        span = min(burst.n_intervals, n - start)
        sl = slice(start, start + span)
        ingress[sl] += burst.delivered_bytes[:span].astype(np.int64)
        marked[sl] += np.minimum(burst.marked_bytes[:span],
                                 burst.delivered_bytes[:span]).astype(np.int64)
        retx[sl] += burst.retransmit_bytes[:span].astype(np.int64)
        queue_frac[sl] = np.maximum(queue_frac[sl],
                                    burst.queue_frac[:span])
        active = np.maximum(
            1, rng.normal(flow_count, max(1.0, 0.03 * flow_count),
                          size=span)).astype(np.int64)
        flows[sl] = np.maximum(flows[sl], active)
        t = start + burst.n_intervals

    _add_background(profile, rng, drain, ingress, flows)
    np.minimum(ingress, int(drain), out=ingress)
    return HostTrace(meta, cfg.line_rate_bps, ingress, flows, marked, retx,
                     interval_ns=cfg.interval_ns, queue_frac=queue_frac)


def _add_background(profile: ServiceProfile, rng: np.random.Generator,
                    drain: float, ingress: np.ndarray,
                    flows: np.ndarray) -> None:
    """Low-rate non-burst traffic on the intervals without burst data."""
    idle = ingress == 0
    n_idle = int(idle.sum())
    if n_idle == 0:
        return
    lo, hi = profile.background_util_range
    util = rng.uniform(lo, hi, size=n_idle)
    ingress[idle] = (util * drain).astype(np.int64)
    flows[idle] = rng.integers(0, 9, size=n_idle)
