"""Workload generators.

- :mod:`repro.workloads.incast` — the Section 4 cyclic incast burst
  application driving the packet-level simulator.
- :mod:`repro.workloads.services` — the Section 3 production-service fleet
  model (five services, partition/aggregate burst arrival processes).
- :mod:`repro.workloads.scheduler` — the Section 5.2 sub-incast admission
  scheduler extension.
- :mod:`repro.workloads.mix` — deterministic elephant/mice flow plans for
  the leaf-spine sweep scenarios.
"""

from repro.workloads.incast import (BurstResult, BurstScheduling,
                                    FlowStateSampler, IncastConfig,
                                    IncastWorkload, demand_per_flow_bytes)
from repro.workloads.mix import (ElephantMiceConfig, FlowSpec, flow_sizes,
                                 plan_elephant_mice, remote_ranks)
from repro.workloads.partition_aggregate import (PartitionAggregateConfig,
                                                 PartitionAggregateWorkload,
                                                 QueryResult)
from repro.workloads.scheduler import IncastScheduler, SchedulerConfig
from repro.workloads.services import (SERVICE_PROFILES, ServiceProfile,
                                      service_names)

__all__ = [
    "BurstResult",
    "BurstScheduling",
    "FlowStateSampler",
    "IncastConfig",
    "IncastWorkload",
    "demand_per_flow_bytes",
    "ElephantMiceConfig",
    "FlowSpec",
    "flow_sizes",
    "plan_elephant_mice",
    "remote_ranks",
    "PartitionAggregateConfig",
    "PartitionAggregateWorkload",
    "QueryResult",
    "IncastScheduler",
    "SchedulerConfig",
    "SERVICE_PROFILES",
    "ServiceProfile",
    "service_names",
]
