"""Mixed elephant/mice flow-set generation for the leaf-spine sweeps.

The ECN-threshold grids deliberately overlap two traffic classes on one
bottleneck — long-lived *elephants* that build a standing queue, and a
synchronized *mice* incast whose FCTs feel that queue — the construction
the related ECN-tuning studies use to expose the threshold trade-off
(deep thresholds keep elephants fast, shallow thresholds keep mice fast).

This module is pure planning: it turns a config plus an
:class:`~repro.simcore.random.RngHub` into a deterministic list of
:class:`FlowSpec` s (who sends, to whom, how much, starting when). The
scenario executors wire the specs onto a built fabric; tests exercise the
generator without any simulator at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.simcore.random import RngHub

KIND_ELEPHANT = "elephant"
KIND_MOUSE = "mouse"


@dataclass(frozen=True)
class FlowSpec:
    """One planned flow, in fabric-local coordinates.

    ``src_rank`` / ``dst_rank`` index hosts by fabric build order
    (``rack_index * hosts_per_rack + host_index``) so a plan never
    depends on process-global host addresses; ``flow_id`` is the
    sim-local connection id the scenario assigns.
    """

    flow_id: int
    kind: str
    src_rank: int
    dst_rank: int
    size_bytes: int
    start_ns: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"flow {self.flow_id}: size must be positive")
        if self.start_ns < 0:
            raise ValueError(f"flow {self.flow_id}: start must be >= 0")


@dataclass(frozen=True)
class ElephantMiceConfig:
    """Parameters of one elephant/mice coexistence plan.

    The receiver is host rank 0 (rack 0, host 0). Elephants start at
    t=0 from distinct remote hosts so their standing queue exists before
    the mice arrive; the mice form one synchronized cross-rack incast at
    ``warmup_ns`` with per-flow jitter (worker response-time variation,
    the same model as the Section 4 burst workload).
    """

    n_racks: int = 3
    hosts_per_rack: int = 8
    n_elephants: int = 2
    n_mice: int = 16
    elephant_bytes: int = 1_000_000
    mouse_bytes: int = 20_000
    warmup_ns: int = units.msec(2.0)
    mouse_jitter_ns: int = units.usec(100.0)

    def __post_init__(self) -> None:
        if self.n_racks < 2 or self.hosts_per_rack < 1:
            raise ValueError("need at least two racks of hosts")
        if self.n_elephants < 0 or self.n_mice <= 0:
            raise ValueError("need a positive mouse count and a "
                             "non-negative elephant count")
        if self.elephant_bytes <= 0 or self.mouse_bytes <= 0:
            raise ValueError("flow sizes must be positive")
        if self.warmup_ns < 0 or self.mouse_jitter_ns < 0:
            raise ValueError("warmup and jitter must be >= 0")
        remote = (self.n_racks - 1) * self.hosts_per_rack
        if self.n_elephants > remote:
            raise ValueError(
                f"{self.n_elephants} elephants need distinct remote "
                f"hosts but only {remote} exist")

    @property
    def receiver_rank(self) -> int:
        """Fabric-local rank of the single incast receiver."""
        return 0


def remote_ranks(cfg: ElephantMiceConfig) -> list[int]:
    """Host ranks outside the receiver's rack, in fabric build order."""
    return list(range(cfg.hosts_per_rack,
                      cfg.n_racks * cfg.hosts_per_rack))


def plan_elephant_mice(cfg: ElephantMiceConfig, rng_hub: RngHub
                       ) -> list[FlowSpec]:
    """Compile the deterministic flow plan for one scenario run.

    Elephants take the first remote hosts (one host each, so no sender
    is both elephant and mouse source unless the mice wrap); mice
    round-robin over the remaining remote hosts. All randomness (mouse
    start jitter) draws from named ``rng_hub`` streams, so the plan is a
    pure function of ``(config, hub seed)`` — independent of process
    history, worker placement, and call order.
    """
    ranks = remote_ranks(cfg)
    flows: list[FlowSpec] = []
    for i in range(cfg.n_elephants):
        flows.append(FlowSpec(
            flow_id=i, kind=KIND_ELEPHANT, src_rank=ranks[i],
            dst_rank=cfg.receiver_rank, size_bytes=cfg.elephant_bytes,
            start_ns=0))
    mouse_hosts = ranks[cfg.n_elephants:] or ranks
    jitter_rng = rng_hub.stream("mix/mouse_jitter")
    for j in range(cfg.n_mice):
        jitter = (int(jitter_rng.uniform(0, cfg.mouse_jitter_ns))
                  if cfg.mouse_jitter_ns > 0 else 0)
        flows.append(FlowSpec(
            flow_id=cfg.n_elephants + j, kind=KIND_MOUSE,
            src_rank=mouse_hosts[j % len(mouse_hosts)],
            dst_rank=cfg.receiver_rank, size_bytes=cfg.mouse_bytes,
            start_ns=cfg.warmup_ns + jitter))
    return flows


def flow_sizes(flows: list[FlowSpec]) -> dict[int, int]:
    """``{flow_id: size_bytes}`` — the classification input FCT
    extraction wants (:func:`repro.analysis.fct.extract_fcts`)."""
    return {flow.flow_id: flow.size_bytes for flow in flows}
