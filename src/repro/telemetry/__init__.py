"""In-simulation Millisampler-style observability layer.

The paper's measurement half (Section 3) rests on Millisampler, a host-side
eBPF sampler recording per-1 ms interval statistics. This package brings the
same lens *inside* the simulator: a :class:`TelemetryRecorder` subscribes to
the hook points the substrate exposes — the simulator's
:class:`~repro.simcore.hooks.HookRegistry`, queue watchers on
:class:`~repro.netsim.queues.DropTailQueue`, and NIC ingress/egress taps —
and records, per interval (default 1 ms) and per attached host:

- ingress and egress bytes,
- live (distinct) flow count,
- ECN CE-marked bytes,
- retransmitted bytes,

plus per-attached-queue peak occupancy — exactly the signal set the
production tool captures — and a per-flow lifecycle event log.

Flow lifecycle channels emitted by :mod:`repro.tcp.connection`:

===================  =========================================  ==========================
channel              arguments                                  fires
===================  =========================================  ==========================
``flow.open``        ``(flow_id, src_addr, dst_addr, t_ns)``    sender construction
``flow.first_byte``  ``(flow_id, host_addr, t_ns)``             first in-order delivery
``flow.alpha``       ``(flow_id, src_addr, alpha, t_ns)``       DCTCP alpha EWMA update
``flow.rto``         ``(flow_id, src_addr, backoff, t_ns)``     retransmission timeout
``flow.close``       ``(flow_id, src_addr, t_ns)``              all current demand ACKed
===================  =========================================  ==========================

(`flow.close` fires each time a persistent connection drains its demand,
i.e. once per burst it participates in.)

Captures are plain picklable records (:class:`TelemetryCapture`) that work
units carry back through the experiment engine; with ``--telemetry`` the
engine folds their JSON form into ``run_report.json`` and
``python -m repro.tools.telemetry_view`` renders them. Everything is
observer-gated: with the recorder absent, the instrumented code paths cost
one dict lookup or one empty-list check and results are bit-identical to
an uninstrumented build.
"""

from repro.telemetry.recorder import (FLOW_CHANNELS, FlowEvent, HostSeries,
                                      QueueSeries, TelemetryCapture,
                                      TelemetryRecorder)

__all__ = [
    "FLOW_CHANNELS",
    "FlowEvent",
    "HostSeries",
    "QueueSeries",
    "TelemetryCapture",
    "TelemetryRecorder",
]
