"""Millisampler-style in-simulation recorder.

A :class:`TelemetryRecorder` is created alongside a :class:`Simulator` and
taps the observation points the substrate exposes:

- ``sim.hooks`` flow-lifecycle channels (see :data:`FLOW_CHANNELS`),
- :meth:`HostNIC.add_ingress_hook` / :meth:`HostNIC.add_egress_hook` per
  attached host,
- :meth:`DropTailQueue.add_watcher` per attached queue.

Per attached host it accumulates, per fixed interval (default 1 ms, the
Millisampler granularity), ingress bytes, egress bytes, distinct active
flows, CE-marked ingress bytes, and retransmitted egress bytes. Per
attached queue it records the peak occupancy each interval reached. All
accumulation is sparse (interval-index dicts) during the run and densified
into numpy arrays at :meth:`TelemetryRecorder.export` time.

Every subscription is remembered so :meth:`TelemetryRecorder.detach` can
restore the simulation to an unobserved state — tests rely on this to show
that attach/detach round-trips leave no residue.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro import units
from repro.netsim.host import Host
from repro.netsim.packet import ECN, Packet
from repro.netsim.queues import DropTailQueue
from repro.simcore.kernel import Simulator

FLOW_CHANNELS = ("flow.open", "flow.first_byte", "flow.alpha", "flow.rto",
                 "flow.close")
"""Hook channels emitted by :mod:`repro.tcp.connection` that the recorder
subscribes to."""

DEFAULT_EVENT_CAP = 100_000
"""Lifecycle events retained before the recorder starts counting drops
instead of appending (keeps worst-case memory bounded)."""


@dataclass(frozen=True)
class FlowEvent:
    """One flow lifecycle event.

    ``value`` carries the channel's extra datum: the destination address for
    ``flow.open``, the new alpha for ``flow.alpha``, the RTO backoff
    exponent for ``flow.rto``, and ``0.0`` otherwise.
    """

    time_ns: int
    kind: str
    flow_id: int
    host: int
    value: float = 0.0

    def to_dict(self) -> dict:
        return {"time_ns": self.time_ns, "kind": self.kind,
                "flow_id": self.flow_id, "host": self.host,
                "value": self.value}


@dataclass
class HostSeries:
    """Dense per-interval series for one host (Millisampler's record).

    ``marked_bytes`` counts CE-marked *ingress* bytes (the direction ECN
    marks are observable from a host); ``retransmit_bytes`` counts
    retransmitted-segment bytes crossing the host in either direction, so
    the series is populated both at senders (which emit retransmissions)
    and at the incast receiver (which absorbs them).
    """

    name: str
    address: int
    ingress_bytes: np.ndarray
    egress_bytes: np.ndarray
    flow_count: np.ndarray
    marked_bytes: np.ndarray
    retransmit_bytes: np.ndarray

    SIGNALS = ("ingress_bytes", "egress_bytes", "flow_count", "marked_bytes",
               "retransmit_bytes")

    def to_dict(self) -> dict:
        out: dict = {"address": self.address}
        for signal in self.SIGNALS:
            series = getattr(self, signal)
            out[signal] = [int(v) for v in series]
            out[f"total_{signal}"] = int(series.sum())
        return out


@dataclass
class QueueSeries:
    """Per-interval peak occupancy for one queue."""

    name: str
    capacity_packets: Optional[int]
    peak_packets: np.ndarray

    def to_dict(self) -> dict:
        return {"capacity_packets": self.capacity_packets,
                "peak_packets": [int(v) for v in self.peak_packets],
                "max_peak_packets": int(self.peak_packets.max())
                if self.peak_packets.size else 0}


@dataclass
class TelemetryCapture:
    """Picklable snapshot of everything a recorder observed.

    This is what rides back from a worker process inside a work-unit
    payload, lands in the result cache, and (as :meth:`to_dict`) in
    ``run_report.json``.
    """

    interval_ns: int
    n_intervals: int
    hosts: dict[str, HostSeries] = field(default_factory=dict)
    queues: dict[str, QueueSeries] = field(default_factory=dict)
    events: list[FlowEvent] = field(default_factory=list)
    events_dropped: int = 0
    event_counts: dict[str, int] = field(default_factory=dict)

    def renumbered(self, addr_map: dict[int, int],
                   flow_map: dict[int, int]) -> "TelemetryCapture":
        """A copy with host addresses and flow ids rewritten to sim-local
        values.

        Hosts and flows draw their raw ids from process-global counters, so
        the same simulation yields different ids depending on how many
        simulations the worker process ran before it. Renumbering to
        run-local ids (sender index, connection index) restores the
        engine's contract that ``--jobs N`` output is byte-identical to
        serial output. Ids absent from a map pass through unchanged; a
        ``flow.open`` event's value (the destination address) is remapped
        like any other address.
        """
        def remap_event(event: FlowEvent) -> FlowEvent:
            value = event.value
            if event.kind == "open":
                value = float(addr_map.get(int(value), int(value)))
            return replace(event,
                           flow_id=flow_map.get(event.flow_id,
                                                event.flow_id),
                           host=addr_map.get(event.host, event.host),
                           value=value)

        return replace(
            self,
            hosts={name: replace(series,
                                 address=addr_map.get(series.address,
                                                      series.address))
                   for name, series in self.hosts.items()},
            events=[remap_event(e) for e in self.events],
        )

    def to_dict(self, max_events: int = 200) -> dict:
        """JSON-ready form; the event log is truncated to ``max_events``
        entries (counts stay exact)."""
        return {
            "interval_ns": self.interval_ns,
            "n_intervals": self.n_intervals,
            "hosts": {name: series.to_dict()
                      for name, series in self.hosts.items()},
            "queues": {name: series.to_dict()
                       for name, series in self.queues.items()},
            "event_counts": dict(self.event_counts),
            "n_events": len(self.events) + self.events_dropped,
            "events_dropped": self.events_dropped,
            "events": [e.to_dict() for e in self.events[:max_events]],
        }


class _HostAccum:
    """Sparse per-interval accumulators for one host."""

    __slots__ = ("name", "address", "ingress", "egress", "marked", "rtx",
                 "flows", "hooks")

    def __init__(self, name: str, address: int) -> None:
        self.name = name
        self.address = address
        self.ingress: dict[int, int] = {}
        self.egress: dict[int, int] = {}
        self.marked: dict[int, int] = {}
        self.rtx: dict[int, int] = {}
        self.flows: dict[int, set[int]] = {}
        self.hooks: list = []  # (unsubscribe-callable,) pairs, see detach

    def max_index(self) -> int:
        indices = [max(d) for d in (self.ingress, self.egress, self.marked,
                                    self.rtx, self.flows) if d]
        return max(indices) if indices else -1


class _QueueAccum:
    """Sparse per-interval peak occupancy for one queue."""

    __slots__ = ("name", "capacity_packets", "peaks", "watcher", "queue")

    def __init__(self, name: str, queue: DropTailQueue) -> None:
        self.name = name
        self.capacity_packets = queue.capacity_packets
        self.peaks: dict[int, int] = {}
        self.watcher = None
        self.queue = queue

    def max_index(self) -> int:
        return max(self.peaks) if self.peaks else -1


class TelemetryRecorder:
    """Record Millisampler-style interval series from a live simulation.

    Usage::

        recorder = TelemetryRecorder(sim)
        recorder.attach()                     # flow lifecycle channels
        recorder.attach_host(net.receiver)    # per-host byte/flow series
        recorder.attach_queue(net.bottleneck_queue)
        ... sim.run(...) ...
        capture = recorder.export()

    Args:
        sim: The simulator whose clock and hook registry to observe.
        interval_ns: Sampling interval; intervals are aligned to t=0, so
            interval ``k`` covers ``[k*interval_ns, (k+1)*interval_ns)``.
        event_cap: Maximum lifecycle events retained verbatim.
    """

    def __init__(self, sim: Simulator,
                 interval_ns: int = units.msec(1.0),
                 event_cap: int = DEFAULT_EVENT_CAP):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self._sim = sim
        self.interval_ns = int(interval_ns)
        self.event_cap = event_cap
        self._hosts: dict[str, _HostAccum] = {}
        self._queues: dict[str, _QueueAccum] = {}
        self._events: list[FlowEvent] = []
        self._events_dropped = 0
        self._event_counts: dict[str, int] = {}
        self._flow_handlers: dict[str, object] = {}
        self._attached = False

    # --- wiring -----------------------------------------------------------

    def attach(self) -> None:
        """Subscribe to the flow lifecycle channels on ``sim.hooks``."""
        if self._attached:
            raise RuntimeError("recorder already attached")
        handlers = {
            "flow.open": self._on_flow_open,
            "flow.first_byte": self._on_flow_simple("first_byte"),
            "flow.alpha": self._on_flow_valued("alpha"),
            "flow.rto": self._on_flow_valued("rto"),
            "flow.close": self._on_flow_simple("close"),
        }
        for channel, handler in handlers.items():
            self._sim.hooks.subscribe(channel, handler)
        self._flow_handlers = handlers
        self._attached = True

    def attach_host(self, host: Host, name: Optional[str] = None) -> None:
        """Record per-interval ingress/egress/flow/mark/retransmit series
        for ``host``."""
        label = name or host.name
        if label in self._hosts:
            raise ValueError(f"host {label!r} already attached")
        accum = _HostAccum(label, host.address)

        def on_ingress(packet: Packet, now: int) -> None:
            idx = now // self.interval_ns
            size = packet.size_bytes
            accum.ingress[idx] = accum.ingress.get(idx, 0) + size
            if packet.ecn == ECN.CE:
                accum.marked[idx] = accum.marked.get(idx, 0) + size
            if packet.is_retransmit:
                accum.rtx[idx] = accum.rtx.get(idx, 0) + size
            accum.flows.setdefault(idx, set()).add(packet.flow_id)

        def on_egress(packet: Packet, now: int) -> None:
            idx = now // self.interval_ns
            size = packet.size_bytes
            accum.egress[idx] = accum.egress.get(idx, 0) + size
            if packet.is_retransmit:
                accum.rtx[idx] = accum.rtx.get(idx, 0) + size
            accum.flows.setdefault(idx, set()).add(packet.flow_id)

        host.nic.add_ingress_hook(on_ingress)
        host.nic.add_egress_hook(on_egress)
        accum.hooks = [
            lambda: host.nic.remove_ingress_hook(on_ingress),
            lambda: host.nic.remove_egress_hook(on_egress),
        ]
        self._hosts[label] = accum

    def attach_queue(self, queue: DropTailQueue,
                     name: Optional[str] = None) -> None:
        """Record per-interval peak occupancy of ``queue``."""
        label = name or queue.name
        if label in self._queues:
            raise ValueError(f"queue {label!r} already attached")
        accum = _QueueAccum(label, queue)

        def on_queue_event(event: str, q: DropTailQueue,
                           packet: Packet) -> None:
            if event != "enqueue":
                return
            idx = self._sim.now // self.interval_ns
            depth = q.len_packets
            if depth > accum.peaks.get(idx, 0):
                accum.peaks[idx] = depth

        queue.add_watcher(on_queue_event)
        accum.watcher = on_queue_event
        self._queues[label] = accum

    def detach(self) -> None:
        """Remove every subscription this recorder installed.

        After this call the simulator, NICs and queues carry no trace of
        the recorder; recorded data stays available for :meth:`export`.
        """
        if self._attached:
            for channel, handler in self._flow_handlers.items():
                self._sim.hooks.unsubscribe(channel, handler)
            self._flow_handlers = {}
            self._attached = False
        for accum in self._hosts.values():
            for undo in accum.hooks:
                undo()
            accum.hooks = []
        for qaccum in self._queues.values():
            if qaccum.watcher is not None:
                qaccum.queue.remove_watcher(qaccum.watcher)
                qaccum.watcher = None

    # --- flow lifecycle handlers -----------------------------------------

    def _record_event(self, event: FlowEvent) -> None:
        self._event_counts[event.kind] = \
            self._event_counts.get(event.kind, 0) + 1
        if len(self._events) < self.event_cap:
            self._events.append(event)
        else:
            self._events_dropped += 1

    def _on_flow_open(self, flow_id: int, src: int, dst: int,
                      t_ns: int) -> None:
        self._record_event(FlowEvent(t_ns, "open", flow_id, src,
                                     value=float(dst)))

    def _on_flow_simple(self, kind: str):
        def handler(flow_id: int, host: int, t_ns: int) -> None:
            self._record_event(FlowEvent(t_ns, kind, flow_id, host))
        return handler

    def _on_flow_valued(self, kind: str):
        def handler(flow_id: int, host: int, value: float,
                    t_ns: int) -> None:
            self._record_event(FlowEvent(t_ns, kind, flow_id, host,
                                         value=float(value)))
        return handler

    # --- export -----------------------------------------------------------

    def export(self) -> TelemetryCapture:
        """Densify accumulators into a :class:`TelemetryCapture`.

        Series share one global length (the latest interval any signal
        touched, across all hosts and queues), so per-host arrays line up
        index-for-index.
        """
        max_idx = -1
        for accum in self._hosts.values():
            max_idx = max(max_idx, accum.max_index())
        for qaccum in self._queues.values():
            max_idx = max(max_idx, qaccum.max_index())
        n = max_idx + 1

        def densify(sparse: dict[int, int]) -> np.ndarray:
            dense = np.zeros(n, dtype=np.int64)
            for idx, value in sparse.items():
                dense[idx] = value
            return dense

        hosts = {}
        for label, accum in self._hosts.items():
            hosts[label] = HostSeries(
                name=label,
                address=accum.address,
                ingress_bytes=densify(accum.ingress),
                egress_bytes=densify(accum.egress),
                flow_count=densify(
                    {idx: len(s) for idx, s in accum.flows.items()}),
                marked_bytes=densify(accum.marked),
                retransmit_bytes=densify(accum.rtx),
            )
        queues = {
            label: QueueSeries(name=label,
                               capacity_packets=qaccum.capacity_packets,
                               peak_packets=densify(qaccum.peaks))
            for label, qaccum in self._queues.items()
        }
        return TelemetryCapture(
            interval_ns=self.interval_ns,
            n_intervals=n,
            hosts=hosts,
            queues=queues,
            events=list(self._events),
            events_dropped=self._events_dropped,
            event_counts=dict(self._event_counts),
        )
