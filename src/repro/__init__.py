"""Reproduction of *Understanding Incast Bursts in Modern Datacenters*
(Canel et al., ACM IMC 2024).

The package is organized bottom-up:

- :mod:`repro.simcore` — discrete-event kernel (integer-nanosecond time).
- :mod:`repro.netsim` — packet-level network model (links, ECN queues,
  shared buffers, switches, NICs, the paper's dumbbell) plus the fluid
  bottleneck used by the production fleet model.
- :mod:`repro.tcp` — TCP with pluggable congestion control: Reno, DCTCP
  (the paper's subject), a Swift-like paced CCA, and the guardrail wrapper.
- :mod:`repro.workloads` — the Section 4 cyclic incast application, the
  Section 3 five-service synthetic fleet, and the sub-incast scheduler.
- :mod:`repro.measurement` — Millisampler, switch watermarks, and fleet
  campaign orchestration.
- :mod:`repro.core` — the paper's analyses: burst detection, incast
  classification, stability, DCTCP operating modes, straggler divergence,
  and the incast-degree predictor.
- :mod:`repro.analysis` — CDFs, series helpers, and table rendering.
- :mod:`repro.experiments` — one runner per table/figure of the paper.
"""

from repro import units

__version__ = "1.2.0"

__all__ = ["units", "__version__"]
