"""Analysis utilities: empirical CDFs, percentile series, and the ASCII
table/figure rendering the experiment runners print."""

from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.series import percentile_bands, resample_mean
from repro.analysis.tables import (format_figure_series, format_table,
                                   render_cdf_table)

__all__ = [
    "EmpiricalCdf",
    "percentile_bands",
    "resample_mean",
    "format_table",
    "format_figure_series",
    "render_cdf_table",
]
