"""ASCII rendering of tables and figure series.

The experiment runners print each reproduced table and figure as text: a
table renders as aligned columns; a "figure" renders as the numeric series
behind it (e.g. a CDF sampled at the percentiles the paper quotes). The
benchmark harnesses print the same rows, so paper-vs-measured comparisons
in EXPERIMENTS.md trace directly to runnable output.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.analysis.cdf import EmpiricalCdf


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has "
                f"{len(headers)} columns")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float) or isinstance(cell, np.floating):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 100 or float(cell).is_integer():
            return f"{cell:.0f}"
        if magnitude >= 1:
            return f"{cell:.2f}"
        return f"{cell:.3g}"
    return str(cell)


def format_figure_series(name: str, x_label: str, y_label: str,
                         x: Iterable[object],
                         y: Iterable[object]) -> str:
    """Render one figure's data series as a two-column table."""
    rows = list(zip(x, y))
    return format_table([x_label, y_label], rows, title=name)


def render_cdf_table(cdfs: dict[str, EmpiricalCdf],
                     percentiles: Sequence[float],
                     value_label: str, title: str = "") -> str:
    """Render several CDFs side by side at fixed percentiles.

    One row per percentile, one column per CDF — the textual equivalent of
    the paper's multi-service CDF figures.
    """
    names = list(cdfs)
    headers = ["pct"] + names
    rows = []
    for p in percentiles:
        # An empty CDF has no percentiles (percentile() raises); render a
        # visible dash instead of a fabricated number.
        rows.append([f"p{p:g}"] + [cdfs[name].percentile(p)
                                   if len(cdfs[name]) else "-"
                                   for name in names])
    caption = title or f"CDF of {value_label}"
    return format_table(headers, rows, title=caption)
