"""Detection-quality metrics for online burst detectors.

The ``detect`` mitigation scheme runs a switch-side burst detector in-sim
(per *Distributed Incast Detection*); this module scores its output
against ground truth the driving workload knows: for each true burst
start, did a detection fire within the match window, and how late?

:func:`evaluate_detections` is deliberately a pure function over two time
lists so tests can pin its matching semantics without any simulation.
"""

from __future__ import annotations

import numpy as np


def evaluate_detections(detections_ns: list[int],
                        truth_starts_ns: list[int], *,
                        match_window_ns: int) -> dict:
    """Score detector firings against ground-truth burst starts.

    Matching is greedy and order-preserving: each truth start claims the
    earliest unclaimed detection inside ``[start, start +
    match_window_ns]``. A detection claimed by no burst is a false
    positive; a burst claiming no detection is a miss.

    Returns a JSON-able dict with ``n_truth``, ``n_detections``,
    ``matched``, ``precision``, ``recall``, and detection-latency
    statistics (``latency_p50_us`` / ``p90`` / ``p99`` / ``mean``) over
    the matched pairs.
    """
    if match_window_ns <= 0:
        raise ValueError("match_window_ns must be positive")
    detections = sorted(int(t) for t in detections_ns)
    truths = sorted(int(t) for t in truth_starts_ns)
    claimed = [False] * len(detections)
    latencies = []
    cursor = 0
    for start in truths:
        while cursor < len(detections) and detections[cursor] < start:
            cursor += 1
        index = cursor
        while index < len(detections) and claimed[index]:
            index += 1
        if (index < len(detections)
                and detections[index] <= start + match_window_ns):
            claimed[index] = True
            latencies.append(detections[index] - start)
    matched = len(latencies)
    lat = np.asarray(latencies, dtype=np.float64)

    def pct(q: float) -> float:
        return float(np.percentile(lat, q)) / 1e3 if lat.size else 0.0

    return {
        "n_truth": len(truths),
        "n_detections": len(detections),
        "matched": matched,
        "precision": matched / len(detections) if detections else 0.0,
        "recall": matched / len(truths) if truths else 0.0,
        "latency_p50_us": pct(50.0),
        "latency_p90_us": pct(90.0),
        "latency_p99_us": pct(99.0),
        "latency_mean_us": float(lat.mean()) / 1e3 if lat.size else 0.0,
    }
