"""ASCII plotting for terminal-rendered figures.

The experiment runners print each figure's numeric series; for a reader at
a terminal, a coarse picture of the *shape* (the Mode 1 sawtooth vs the
Mode 2 plateau vs the Mode 3 overflow) is often more useful than rows of
numbers. This module renders:

- :func:`line_plot` — a y-vs-x character plot with axis labels;
- :func:`sparkline` — a one-line unicode summary of a series;
- :func:`cdf_plot` — an overlay line plot of several CDFs.

All output is plain text; no plotting dependencies.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Iterable[float], width: int = 60) -> str:
    """One-line sketch of a series, resampled to ``width`` characters."""
    data = np.asarray([v for v in values if not math.isnan(v)],
                      dtype=np.float64)
    if data.size == 0:
        return ""
    if data.size > width:
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.asarray([data[a:b].mean() if b > a else data[min(a, data.size - 1)]
                           for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(data.min()), float(data.max())
    if hi == lo:
        return SPARK_LEVELS[0] * len(data)
    scaled = (data - lo) / (hi - lo) * (len(SPARK_LEVELS) - 1)
    return "".join(SPARK_LEVELS[int(round(s))] for s in scaled)


def line_plot(x: Sequence[float], y: Sequence[float], width: int = 68,
              height: int = 14, title: str = "", x_label: str = "",
              y_label: str = "",
              y_max: Optional[float] = None) -> str:
    """Character-grid line plot of ``y`` against ``x``.

    NaN values leave gaps. ``y_max`` pins the top of the axis (useful to
    show a queue-capacity ceiling).
    """
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.shape != ys.shape:
        raise ValueError("x and y must have the same shape")
    valid = ~np.isnan(ys)
    if not valid.any():
        return f"{title}\n(no data)"
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo = min(0.0, float(ys[valid].min()))
    y_hi = y_max if y_max is not None else float(ys[valid].max())
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(xs[valid], ys[valid]):
        col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
        yi_clamped = min(max(yi, y_lo), y_hi)
        row = int((yi_clamped - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = "*"

    label_width = max(len(f"{y_hi:g}"), len(f"{y_lo:g}"))
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        if index == 0:
            label = f"{y_hi:g}".rjust(label_width)
        elif index == height - 1:
            label = f"{y_lo:g}".rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append(" " * (label_width + 2) + x_axis)
    footer = []
    if x_label:
        footer.append(f"x: {x_label}")
    if y_label:
        footer.append(f"y: {y_label}")
    if footer:
        lines.append(" " * (label_width + 2) + "   ".join(footer))
    return "\n".join(lines)


def cdf_plot(cdfs: dict[str, tuple[Sequence[float], Sequence[float]]],
             width: int = 68, height: int = 12, title: str = "",
             x_label: str = "") -> str:
    """Overlay plot of several CDF curves, one marker letter per curve.

    ``cdfs`` maps name -> ``(x, F(x))`` as produced by
    :meth:`repro.analysis.cdf.EmpiricalCdf.curve`.
    """
    curves = {name: (np.asarray(cx, dtype=np.float64),
                     np.asarray(cy, dtype=np.float64))
              for name, (cx, cy) in cdfs.items() if len(cx)}
    if not curves:
        return f"{title}\n(no data)"
    x_lo = min(float(cx.min()) for cx, _ in curves.values())
    x_hi = max(float(cx.max()) for cx, _ in curves.values())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, (cx, cy)) in enumerate(curves.items()):
        marker = chr(ord("a") + index % 26)
        legend.append(f"{marker}={name}")
        for xi, yi in zip(cx, cy):
            col = int((xi - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int(yi * (height - 1))
            cell = grid[height - 1 - row][col]
            grid[height - 1 - row][col] = "+" if cell not in (" ", marker) \
                else marker
    lines = []
    if title:
        lines.append(title)
    for index, row in enumerate(grid):
        label = "1.0" if index == 0 else ("0.0" if index == height - 1
                                          else "   ")
        lines.append(f"{label} |{''.join(row)}")
    lines.append("    +" + "-" * width)
    x_axis = f"{x_lo:g}".ljust(width - len(f"{x_hi:g}")) + f"{x_hi:g}"
    lines.append("     " + x_axis)
    suffix = f"   ({x_label})" if x_label else ""
    lines.append("     " + "  ".join(legend) + suffix)
    return "\n".join(lines)
