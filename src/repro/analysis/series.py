"""Time-series helpers for the simulation figures.

Figures 5 and 6 average queue-length traces across the ten steady bursts
of an experiment; Figure 7 plots percentile bands across flows. These
helpers do the resampling and banding.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np


def resample_mean(times_ns: np.ndarray, values: np.ndarray,
                  bin_ns: int, start_ns: int = 0,
                  end_ns: int | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Average ``values`` into fixed bins of ``bin_ns``.

    Returns ``(bin_start_times, bin_means)``; empty bins yield NaN so gaps
    stay visible rather than silently interpolating.
    """
    if bin_ns <= 0:
        raise ValueError("bin size must be positive")
    times_ns = np.asarray(times_ns, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if end_ns is None:
        end_ns = int(times_ns[-1]) + 1 if times_ns.size else start_ns + bin_ns
    n_bins = max(1, -(-(end_ns - start_ns) // bin_ns))
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    mask = (times_ns >= start_ns) & (times_ns < end_ns)
    indices = (times_ns[mask] - start_ns) // bin_ns
    np.add.at(sums, indices, values[mask])
    np.add.at(counts, indices, 1)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    bin_times = start_ns + np.arange(n_bins) * bin_ns
    return bin_times, means


def align_and_average(segments: Sequence[tuple[np.ndarray, np.ndarray]],
                      bin_ns: int, span_ns: int
                      ) -> tuple[np.ndarray, np.ndarray]:
    """Average several ``(times, values)`` segments after aligning each to
    its own t=0, the way Figure 5 averages the final ten bursts.

    Each segment's times must already be relative to its burst start.
    Returns ``(offsets, mean_across_segments)``; bins missing in a segment
    are ignored for that segment.
    """
    n_bins = max(1, -(-span_ns // bin_ns))
    total = np.zeros(n_bins)
    count = np.zeros(n_bins)
    for times, values in segments:
        _, means = resample_mean(times, values, bin_ns, 0, span_ns)
        valid = ~np.isnan(means)
        total[valid] += means[valid]
        count[valid] += 1
    with np.errstate(invalid="ignore"):
        averaged = np.where(count > 0, total / np.maximum(count, 1), np.nan)
    offsets = np.arange(n_bins) * bin_ns
    return offsets, averaged


def percentile_bands(matrix: np.ndarray,
                     percentiles: Iterable[float]) -> np.ndarray:
    """Column-wise percentiles of a ``(entities, samples)`` matrix.

    Returns an array of shape ``(len(percentiles), samples)`` — one band
    per requested percentile.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D (entities, samples) matrix")
    return np.percentile(matrix, list(percentiles), axis=0)
