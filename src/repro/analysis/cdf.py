"""Empirical cumulative distribution functions.

Each sample in the paper's CDFs corresponds to one burst (Figures 2 and 4)
or one trace (Figure 2a). :class:`EmpiricalCdf` wraps a sample set with the
queries those figures need: evaluation at arbitrary points, percentiles,
and tail-focused summaries (Figure 4's panels start their y-axes at p50 and
p95 precisely because the action is in the tail).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np


class EmpiricalCdf:
    """An empirical CDF over a fixed sample set."""

    def __init__(self, samples: Iterable[float], name: str = ""):
        values = np.asarray(list(samples), dtype=np.float64)
        if np.isnan(values).any():
            raise ValueError(
                f"EmpiricalCdf({name or 'unnamed'}): NaN samples are not "
                f"meaningful in a CDF; filter them before construction")
        self._sorted = np.sort(values)
        self.name = name

    def __len__(self) -> int:
        return len(self._sorted)

    @property
    def values(self) -> np.ndarray:
        """The sorted sample values."""
        return self._sorted

    def evaluate(self, x: float) -> float:
        """P(sample <= x). Zero for an empty sample set."""
        if len(self._sorted) == 0:
            return 0.0
        return float(np.searchsorted(self._sorted, x, side="right")
                     / len(self._sorted))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100).

        Raises :class:`ValueError` on an empty sample set: an empty
        distribution has no percentiles, and the old ``0.0`` fallback
        rendered as a fake "0 ms" measurement in exports and tables.
        Callers that may hold empty sets must guard with ``len(cdf)``
        (as :func:`repro.analysis.fct.format_fct_table` and
        :func:`repro.analysis.tables.render_cdf_table` do).

        Uses ``method="inverted_cdf"`` so the answer is always an observed
        sample and agrees with :meth:`evaluate`: numpy's default linear
        interpolation invents values between samples, so
        ``evaluate(percentile(p))`` could disagree with ``p`` — wrong for
        an *empirical* distribution.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if len(self._sorted) == 0:
            raise ValueError(
                f"EmpiricalCdf({self.name or 'unnamed'}): percentile of an "
                f"empty sample set is undefined; guard with len(cdf)")
        return float(np.percentile(self._sorted, p, method="inverted_cdf"))

    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    def export_dict(self) -> dict:
        """JSON-export summary: sample count, mean, and a fixed
        percentile grid (consumed by :mod:`repro.analysis.export`).

        An empty set exports ``mean: None`` and no percentile entries —
        visibly absent rather than a fabricated zero."""
        if len(self._sorted) == 0:
            return {"name": self.name, "n": 0, "mean": None,
                    "percentiles": {}}
        grid = [1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0]
        return {
            "name": self.name,
            "n": len(self._sorted),
            "mean": self.mean(),
            "percentiles": {f"p{p:g}": self.percentile(p) for p in grid},
        }

    def mean(self) -> float:
        """Sample mean. Zero for an empty sample set."""
        return float(self._sorted.mean()) if len(self._sorted) else 0.0

    def fraction_at_or_below(self, x: float) -> float:
        """Alias of :meth:`evaluate`, reading like the figure captions
        ("~50% of bursts do not experience any marking")."""
        return self.evaluate(x)

    def tail_summary(self, percentiles: Iterable[float] | None = None
                     ) -> dict[float, float]:
        """Values at a tail-focused set of percentiles (default: the points
        the paper quotes)."""
        points = list(percentiles) if percentiles is not None \
            else [50.0, 90.0, 95.0, 99.0, 99.9, 100.0]
        return {p: self.percentile(p) for p in points}  # raises when empty

    def curve(self, n_points: int = 200
              ) -> tuple[np.ndarray, np.ndarray]:
        """``(x, F(x))`` arrays for plotting the full CDF curve."""
        if len(self._sorted) == 0:
            return np.zeros(0), np.zeros(0)
        n = len(self._sorted)
        if n <= n_points:
            x = self._sorted
            y = np.arange(1, n + 1) / n
        else:
            idx = np.linspace(0, n - 1, n_points).astype(int)
            x = self._sorted[idx]
            y = (idx + 1) / n
        return x, y

    def __repr__(self) -> str:
        if len(self._sorted) == 0:
            return f"EmpiricalCdf({self.name or 'unnamed'}, n=0)"
        return (f"EmpiricalCdf({self.name or 'unnamed'}, n={len(self)}, "
                f"median={self.median():.3g})")
