"""Per-flow flow-completion-time (FCT) extraction.

The sweep scenarios measure what the ECN-threshold literature measures:
per-flow FCTs over a mixed elephant/mice workload, split by flow class.
The raw material is the telemetry flow-lifecycle log — the
:class:`~repro.telemetry.recorder.FlowEvent` stream every simulation
already emits on ``flow.open`` / ``flow.first_byte`` / ``flow.close`` —
so FCT extraction is a pure post-processing step: no new instrumentation
in the packet path, and any captured run can be re-analysed offline.

The contract:

- a flow's FCT is ``first close - open`` (close fires when the sender's
  cumulative ACK reaches its demand, i.e. when every byte is delivered);
- a flow that opened but never closed inside the simulated horizon is
  *unfinished*: it is excluded from every CDF and counted in
  :attr:`FctSet.unfinished` (silently folding it in would fake a finite
  FCT for a flow the horizon truncated);
- flows are classed ``mouse`` or ``elephant`` by their demand size
  against a threshold (mice: ``size <= mouse_max_bytes``), matching the
  deliberate elephant-over-incast-mice overlap of the grid scenarios;
- merging :class:`FctSet` s from different work units is associative and
  order-independent (records re-sort by ``(open_ns, flow_id)``), so a
  sweep merged from cached, parallel, or resumed units is byte-identical
  to a serial one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro import units
from repro.analysis.cdf import EmpiricalCdf
from repro.analysis.tables import format_table

MOUSE = "mouse"
ELEPHANT = "elephant"

DEFAULT_MOUSE_MAX_BYTES = 100_000
"""Flows at or below this demand are mice (the classic 100 KB cut)."""


@dataclass(frozen=True)
class FlowFct:
    """One finished flow's lifecycle, reduced to the FCT view."""

    flow_id: int
    src: int
    open_ns: int
    close_ns: int
    size_bytes: Optional[int] = None
    first_byte_ns: Optional[int] = None
    cls: str = MOUSE

    def __post_init__(self) -> None:
        if self.close_ns < self.open_ns:
            raise ValueError(
                f"flow {self.flow_id}: close at {self.close_ns} precedes "
                f"open at {self.open_ns}")

    @property
    def fct_ns(self) -> int:
        """Flow completion time in nanoseconds."""
        return self.close_ns - self.open_ns

    @property
    def fct_ms(self) -> float:
        """Flow completion time in milliseconds."""
        return units.ns_to_ms(self.fct_ns)

    def to_dict(self) -> dict:
        """JSON-ready record (one row of a per-flow export)."""
        return {"flow_id": self.flow_id, "src": self.src,
                "open_ns": self.open_ns, "close_ns": self.close_ns,
                "fct_ns": self.fct_ns, "size_bytes": self.size_bytes,
                "first_byte_ns": self.first_byte_ns, "cls": self.cls}


@dataclass(frozen=True)
class FctSet:
    """An order-canonical set of finished-flow records plus rejection
    accounting.

    Attributes:
        records: Finished flows, sorted by ``(open_ns, flow_id)`` — the
            canonical order that makes :func:`merge_fct_sets`
            associative.
        unfinished: Flows that opened but never closed (horizon
            truncation); never part of a CDF.
        mouse_max_bytes: The classification threshold the records were
            built with.
    """

    records: tuple[FlowFct, ...] = ()
    unfinished: int = 0
    mouse_max_bytes: int = DEFAULT_MOUSE_MAX_BYTES

    def __len__(self) -> int:
        return len(self.records)

    def of_class(self, cls: str) -> list[FlowFct]:
        """Records of one flow class (:data:`MOUSE` / :data:`ELEPHANT`)."""
        return [r for r in self.records if r.cls == cls]

    def fct_cdf(self, cls: Optional[str] = None,
                name: str = "") -> EmpiricalCdf:
        """CDF of FCTs in milliseconds, optionally restricted to a class."""
        chosen = self.records if cls is None else self.of_class(cls)
        return EmpiricalCdf([r.fct_ms for r in chosen],
                            name=name or (cls or "all"))

    def split_cdfs(self) -> dict[str, EmpiricalCdf]:
        """``{"mice": cdf, "elephants": cdf}`` (absent classes excluded)."""
        out: dict[str, EmpiricalCdf] = {}
        if self.of_class(MOUSE):
            out["mice"] = self.fct_cdf(MOUSE, name="mice")
        if self.of_class(ELEPHANT):
            out["elephants"] = self.fct_cdf(ELEPHANT, name="elephants")
        return out

    def summary(self) -> dict:
        """Scalar digest for JSON export and golden fixtures."""
        out: dict = {"n_flows": len(self.records),
                     "unfinished": self.unfinished,
                     "n_mice": len(self.of_class(MOUSE)),
                     "n_elephants": len(self.of_class(ELEPHANT))}
        for key, cdf in self.split_cdfs().items():
            out[f"{key}_fct_ms"] = cdf.export_dict()
        return out

    def export_dict(self) -> dict:
        """JSON export hook (:mod:`repro.analysis.export`)."""
        return self.summary()


def extract_fcts(events: Iterable, *,
                 sizes: Optional[Mapping[int, int]] = None,
                 mouse_max_bytes: int = DEFAULT_MOUSE_MAX_BYTES) -> FctSet:
    """Reduce a flow-lifecycle event log to per-flow FCT records.

    Args:
        events: ``FlowEvent``-shaped objects (``time_ns`` / ``kind`` /
            ``flow_id`` / ``host`` attributes) in any order; only the
            ``open`` / ``first_byte`` / ``close`` kinds are consumed.
        sizes: Per-flow demand in bytes, used for mouse/elephant
            classification. Flows without an entry classify by the
            threshold as mice only when ``sizes`` is omitted entirely;
            with a partial map the missing flow is an error (a silent
            default would misclass an elephant). ``NaN`` sizes are
            rejected for the same reason.
        mouse_max_bytes: Largest demand still counted as a mouse.

    Returns:
        An order-canonical :class:`FctSet`; flows with an ``open`` but no
        ``close`` are counted as unfinished, and a ``close`` with no
        preceding ``open`` raises (the log is corrupt).
    """
    if mouse_max_bytes <= 0:
        raise ValueError("mouse_max_bytes must be positive")
    opens: dict[int, tuple[int, int]] = {}     # flow -> (open_ns, src)
    first_bytes: dict[int, int] = {}
    closes: dict[int, int] = {}                # first close only
    ordered = sorted(events, key=lambda e: (e.time_ns, e.flow_id))
    for event in ordered:
        if event.kind == "open":
            opens.setdefault(event.flow_id, (event.time_ns, event.host))
        elif event.kind == "first_byte":
            first_bytes.setdefault(event.flow_id, event.time_ns)
        elif event.kind == "close":
            if event.flow_id not in opens:
                raise ValueError(
                    f"flow {event.flow_id} closed at {event.time_ns} "
                    f"without an open event — corrupt lifecycle log")
            closes.setdefault(event.flow_id, event.time_ns)

    records = []
    for flow_id, (open_ns, src) in opens.items():
        if flow_id not in closes:
            continue  # unfinished; counted below
        size: Optional[int] = None
        if sizes is not None:
            if flow_id not in sizes:
                raise ValueError(
                    f"flow {flow_id} has no size entry; pass sizes for "
                    f"every flow (or none at all)")
            raw = sizes[flow_id]
            if isinstance(raw, float) and math.isnan(raw):
                raise ValueError(f"flow {flow_id}: NaN size is not a "
                                 f"classifiable demand")
            size = int(raw)
        cls = MOUSE if size is None or size <= mouse_max_bytes \
            else ELEPHANT
        records.append(FlowFct(
            flow_id=flow_id, src=src, open_ns=open_ns,
            close_ns=closes[flow_id], size_bytes=size,
            first_byte_ns=first_bytes.get(flow_id), cls=cls))
    records.sort(key=lambda r: (r.open_ns, r.flow_id))
    return FctSet(records=tuple(records),
                  unfinished=len(opens) - len(records),
                  mouse_max_bytes=mouse_max_bytes)


def merge_fct_sets(sets: Sequence[FctSet]) -> FctSet:
    """Combine per-unit FCT sets into one (associative, order-canonical).

    Records re-sort into the canonical ``(open_ns, flow_id)`` order and
    unfinished counts add, so ``merge([merge([a, b]), c])`` equals
    ``merge([a, merge([b, c])])`` and equals ``merge([a, b, c])`` — the
    property that lets a sweep merge cached, fresh, and resumed unit
    payloads interchangeably.

    The inputs must describe *disjoint* flows: two records sharing a
    ``(flow_id, open_ns)`` identity mean the same flow arrived twice
    (e.g. one unit payload merged with itself after a resume or cache
    bug), which would silently double-count it in every CDF — that is an
    error here. Sets from *different simulations* of the same flow plan
    legitimately repeat identities; pool those with
    :func:`pool_fct_sets` instead.
    """
    if not sets:
        return FctSet()
    thresholds = {s.mouse_max_bytes for s in sets}
    if len(thresholds) > 1:
        raise ValueError(f"cannot merge FCT sets classified with different "
                         f"mouse thresholds: {sorted(thresholds)}")
    merged = [record for s in sets for record in s.records]
    seen: set[tuple[int, int]] = set()
    for record in merged:
        key = (record.flow_id, record.open_ns)
        if key in seen:
            raise ValueError(
                f"duplicate flow in merge: flow_id={record.flow_id} "
                f"opened at {record.open_ns} ns appears in more than one "
                f"input set — merging would double-count it (same unit "
                f"payload merged twice?); use pool_fct_sets for records "
                f"from distinct simulations")
        seen.add(key)
    merged.sort(key=lambda r: (r.open_ns, r.flow_id))
    return FctSet(records=tuple(merged),
                  unfinished=sum(s.unfinished for s in sets),
                  mouse_max_bytes=thresholds.pop())


def pool_fct_sets(sets: Sequence[FctSet]) -> FctSet:
    """Pool FCT sets from *distinct simulations* into one sample set.

    A sweep's grid points simulate the same deterministic flow plan under
    different parameters, so their records legitimately collide on
    ``(flow_id, open_ns)`` — they are independent measurements, not the
    same flow twice. Pooling renumbers each input set's flows into a
    disjoint id range (set index stacked above the widest id) and then
    merges; the resulting CDFs are unchanged by renumbering (FCTs do not
    depend on flow ids) while :func:`merge_fct_sets`'s double-count guard
    stays meaningful for true unit-payload merges.
    """
    if not sets:
        return FctSet()
    width = max((r.flow_id for s in sets for r in s.records),
                default=0) + 1
    disjoint = []
    for index, s in enumerate(sets):
        records = tuple(
            FlowFct(flow_id=index * width + r.flow_id, src=r.src,
                    open_ns=r.open_ns, close_ns=r.close_ns,
                    size_bytes=r.size_bytes,
                    first_byte_ns=r.first_byte_ns, cls=r.cls)
            for r in s.records)
        disjoint.append(FctSet(records=records, unfinished=s.unfinished,
                               mouse_max_bytes=s.mouse_max_bytes))
    return merge_fct_sets(disjoint)


def format_fct_table(rows: Mapping[str, FctSet],
                     percentiles: Sequence[float] = (50.0, 90.0, 99.0),
                     title: str = "") -> str:
    """Render one FCT summary row per labelled set (e.g. per grid point).

    Columns: flow counts, then mice and elephant FCT percentiles in
    milliseconds — the textual form of an FCT-vs-K comparison figure.
    """
    headers = ["point", "flows", "unfin"]
    for cls in ("mice", "eleph"):
        headers += [f"{cls} p{p:g} (ms)" for p in percentiles]
    table_rows = []
    for label, fct_set in rows.items():
        row: list[object] = [label, len(fct_set), fct_set.unfinished]
        for cls in (MOUSE, ELEPHANT):
            chosen = fct_set.of_class(cls)
            if chosen:
                cdf = fct_set.fct_cdf(cls)
                row += [round(cdf.percentile(p), 3) for p in percentiles]
            else:
                row += ["-"] * len(percentiles)
        table_rows.append(row)
    return format_table(headers, table_rows,
                        title=title or "Per-flow FCT summary")
