"""JSON export of experiment results.

``python -m repro.experiments --all --json-dir results/`` writes one JSON
document per experiment so runs can be archived, diffed across versions,
and post-processed by external plotting tools. Only JSON-representable
content is exported: rendered sections always; ``data`` entries when they
are plain scalars/lists/dicts or numpy arrays (converted), with everything
else summarized by type name.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.experiments.result import ExperimentResult

_MAX_ARRAY_EXPORT = 100_000


def jsonable(value: Any) -> Any:
    """Best-effort conversion of ``value`` into JSON-compatible data.

    Numpy scalars and arrays convert to Python numbers and lists (arrays
    beyond a size cap are summarized); dicts/lists/tuples convert
    recursively; anything else becomes a ``"<TypeName>"`` placeholder.
    """
    # Numpy scalar checks come first: np.float64 *is* a float subclass,
    # and NaN must map to None either way (JSON has no NaN).
    if isinstance(value, (np.bool_, np.integer)):
        return value.item()
    if isinstance(value, (float, np.floating)):
        out = float(value)
        return None if np.isnan(out) else out
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, np.ndarray):
        if value.size > _MAX_ARRAY_EXPORT:
            return {"__array_summary__": True, "shape": list(value.shape),
                    "dtype": str(value.dtype),
                    "mean": float(np.nanmean(value.astype(np.float64)))}
        return [jsonable(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if isinstance(value, ExperimentResult):
        return result_to_dict(value)
    export = getattr(value, "export_dict", None)
    if callable(export):
        return {str(key): jsonable(item) for key, item in export().items()}
    return f"<{type(value).__name__}>"


def result_to_dict(result: ExperimentResult) -> dict:
    """Flatten an :class:`ExperimentResult` into a JSON-compatible dict."""
    return {
        "name": result.name,
        "description": result.description,
        "sections": list(result.sections),
        "data": {key: jsonable(value) for key, value in result.data.items()},
    }


def write_result(result: ExperimentResult, directory: Path) -> Path:
    """Write one experiment's JSON document; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result_to_dict(result), handle, indent=2,
                  allow_nan=False, default=lambda o: f"<{type(o).__name__}>")
    return path


def write_run_report(report: Any, directory: Path) -> Path:
    """Write an engine :class:`~repro.experiments.engine.report.RunReport`
    (anything with ``to_dict()``) as ``run_report.json``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "run_report.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(jsonable(report.to_dict()), handle, indent=2,
                  allow_nan=False)
    return path
